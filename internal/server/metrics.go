package server

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gbkmv"
	"gbkmv/internal/obs"
)

// Metrics is the store-wide metric surface behind GET /metrics. Families are
// registered once when the store opens; per-collection children are resolved
// once per collection (collMetrics) or once per endpoint×collection pair
// (endpointMetrics, cached in a sync.Map), so the hot request path does no
// label resolution — only pointer-chasing plus atomic adds.
//
// Label cardinality rule: the only free-form label is the collection name,
// which is operator-controlled (created by explicit PUT, validated against
// nameRE) and therefore bounded; HTTP endpoint labels are the fixed route
// patterns, and status codes are collapsed to their class.
type Metrics struct {
	reg *obs.Registry

	httpRequests *obs.CounterVec   // endpoint, collection, code (class)
	httpLatency  *obs.HistogramVec // endpoint, collection

	fsync      *obs.HistogramVec // collection
	groupSize  *obs.HistogramVec // collection
	walBytes   *obs.CounterVec   // collection
	walFrames  *obs.CounterVec   // collection
	rollbacks  *obs.CounterVec   // collection
	tornTails  *obs.CounterVec   // collection
	replaySecs *obs.GaugeVec     // collection

	qcHits      *obs.CounterVec // collection
	qcMisses    *obs.CounterVec // collection
	qcEvictions *obs.CounterVec // collection
	qcEntries   *obs.GaugeVec   // collection (scrape-time mirror)

	batchSize     *obs.HistogramVec // collection
	candidates    *obs.HistogramVec // collection
	candTotal     *obs.CounterVec   // collection
	prunedTotal   *obs.CounterVec   // collection
	estTotal      *obs.CounterVec   // collection
	bufferAccepts *obs.CounterVec   // collection

	// fencing counts stale-peer replication requests answered 410 Gone (the
	// promotion fencing protocol); shedLoad counts requests shed with 503
	// under overload, by reason.
	fencing  *obs.CounterVec // collection
	shedLoad *obs.CounterVec // reason

	collRecords *obs.GaugeVec // collection (scrape-time mirror)
	collGen     *obs.GaugeVec // collection: query generation
	// Segmented-collection surface: per-segment record counts (scrape-time
	// mirror; segCounts remembers each collection's last mirrored segment
	// count so stale children are removed exactly) and the snapshot pause
	// histogram — per segment-encode for segmented collections, per
	// index-encode for single-index ones.
	segRecords *obs.GaugeVec     // collection, segment
	snapPause  *obs.HistogramVec // collection
	segCounts  sync.Map          // collection name → int
	journaled   *obs.GaugeVec // collection: entries in the current journal
	walOffset   *obs.GaugeVec // collection: journal logical size
	walSynced   *obs.GaugeVec // collection: durable high-water mark
	hashedTotal *obs.CounterVec
	shrinkTotal *obs.CounterVec

	// Storage-integrity families (see integrity.go): disk errors by write-path
	// op, snapshot verification failures by detection stage (load / scrub /
	// transfer), quarantined generations, scrub passes and failures, and the
	// per-collection read-only gauge mirrored at scrape time. lastScrubNano
	// backs the gbkmv_scrub_last_age_seconds gauge (-1 until the first pass).
	diskErrors    *obs.CounterVec // op
	verifyFails   *obs.CounterVec // collection, stage
	quarantines   *obs.CounterVec // collection
	scrubPasses   *obs.Counter
	scrubFails    *obs.Counter
	readOnlyG     *obs.GaugeVec // collection (scrape-time mirror)
	lastScrubNano atomic.Int64

	// endpoints caches endpointMetrics per (pattern, collection); reads are
	// the no-allocation sync.Map fast path.
	endpoints sync.Map // endpointKey → *endpointMetrics
}

type endpointKey struct {
	pattern    string
	collection string
}

// endpointMetrics is the resolved child set of one endpoint×collection pair.
type endpointMetrics struct {
	byClass [3]*obs.Counter // 2xx (and 1xx/3xx), 4xx, 5xx
	latency *obs.Histogram
}

// newMetrics registers every family on a fresh registry.
func newMetrics() *Metrics {
	r := obs.NewRegistry()
	m := &Metrics{
		reg: r,
		httpRequests: r.CounterVec("gbkmv_http_requests_total",
			"HTTP requests served, by route pattern, collection and status class.",
			"endpoint", "collection", "code"),
		httpLatency: r.HistogramVec("gbkmv_http_request_seconds",
			"HTTP request latency, by route pattern and collection.",
			obs.LatencyBuckets, "endpoint", "collection"),
		fsync: r.HistogramVec("gbkmv_wal_fsync_seconds",
			"Journal fsync latency (one observation per commit group).",
			obs.LatencyBuckets, "collection"),
		groupSize: r.HistogramVec("gbkmv_wal_commit_group_size",
			"Insert batches sharing one journal fsync.",
			obs.CountBuckets, "collection"),
		walBytes: r.CounterVec("gbkmv_wal_appended_bytes_total",
			"Bytes appended to the journal.", "collection"),
		walFrames: r.CounterVec("gbkmv_wal_appended_frames_total",
			"Record frames appended to the journal.", "collection"),
		rollbacks: r.CounterVec("gbkmv_wal_rollbacks_total",
			"Journal rollbacks to the durable high-water mark after a failed commit.",
			"collection"),
		tornTails: r.CounterVec("gbkmv_wal_torn_tail_recoveries_total",
			"Torn journal tails truncated during startup replay.", "collection"),
		replaySecs: r.GaugeVec("gbkmv_wal_replay_seconds",
			"Duration of the startup journal replay.", "collection"),
		qcHits: r.CounterVec("gbkmv_query_cache_hits_total",
			"Prepared-query cache hits.", "collection"),
		qcMisses: r.CounterVec("gbkmv_query_cache_misses_total",
			"Prepared-query cache misses (query prepared from scratch).", "collection"),
		qcEvictions: r.CounterVec("gbkmv_query_cache_evictions_total",
			"Prepared-query cache LRU evictions.", "collection"),
		qcEntries: r.GaugeVec("gbkmv_query_cache_entries",
			"Prepared-query cache entries currently resident.", "collection"),
		batchSize: r.HistogramVec("gbkmv_batch_queries",
			"Queries per batch request (search:batch, topk:batch).",
			obs.CountBuckets, "collection"),
		candidates: r.HistogramVec("gbkmv_search_candidates",
			"Candidate records generated per search.",
			obs.CountBuckets, "collection"),
		candTotal: r.CounterVec("gbkmv_search_candidates_total",
			"Candidate records generated by searches.", "collection"),
		prunedTotal: r.CounterVec("gbkmv_search_pruned_total",
			"Candidates dismissed by the upper-bound prune without a sketch merge.",
			"collection"),
		estTotal: r.CounterVec("gbkmv_search_estimated_total",
			"Full sketch-merge estimates computed by searches.", "collection"),
		bufferAccepts: r.CounterVec("gbkmv_search_buffer_accepts_total",
			"Hits settled by the exact frequent-element buffer alone.", "collection"),
		fencing: r.CounterVec("gbkmv_repl_fencing_rejections_total",
			"Stale-generation replication requests rejected with 410 Gone (fenced-off peers).",
			"collection"),
		shedLoad: r.CounterVec("gbkmv_shed_load_total",
			"Requests shed with 503 Service Unavailable under overload, by reason.",
			"reason"),
		collRecords: r.GaugeVec("gbkmv_collection_records",
			"Records in the collection.", "collection"),
		collGen: r.GaugeVec("gbkmv_collection_query_generation",
			"Query generation (bumped by every engine mutation; cache key epoch).",
			"collection"),
		segRecords: r.GaugeVec("gbkmv_segment_records",
			"Records per segment of a segmented collection.",
			"collection", "segment"),
		snapPause: r.HistogramVec("gbkmv_snapshot_pause_seconds",
			"Engine-lock hold time per snapshot encode: one observation per segment "+
				"for segmented collections, one per snapshot for single-index ones.",
			obs.LatencyBuckets, "collection"),
		journaled: r.GaugeVec("gbkmv_wal_entries",
			"Entries in the current journal (reset by snapshots).", "collection"),
		walOffset: r.GaugeVec("gbkmv_wal_offset_bytes",
			"Journal logical size, including buffered not-yet-flushed bytes.",
			"collection"),
		walSynced: r.GaugeVec("gbkmv_wal_synced_offset_bytes",
			"Journal durable high-water mark: every byte below it is fsynced.",
			"collection"),
		hashedTotal: r.CounterVec("gbkmv_build_elements_hashed_total",
			"Element occurrences hashed by the write path (build, load, insert).",
			"collection"),
		shrinkTotal: r.CounterVec("gbkmv_build_threshold_shrinks_total",
			"Fixed-budget threshold shrinks performed.", "collection"),
		diskErrors: r.CounterVec("gbkmv_disk_errors_total",
			"Write-path disk errors, by operation.", "op"),
		verifyFails: r.CounterVec("gbkmv_snapshot_verify_failures_total",
			"Snapshot checksum verification failures, by detection stage (load, scrub, transfer).",
			"collection", "stage"),
		quarantines: r.CounterVec("gbkmv_quarantined_generations_total",
			"Corrupt snapshot generations quarantined.", "collection"),
		scrubPasses: r.Counter("gbkmv_scrub_passes_total",
			"Completed background scrub passes."),
		scrubFails: r.Counter("gbkmv_scrub_failures_total",
			"Scrub passes that found a corrupt collection."),
		readOnlyG: r.GaugeVec("gbkmv_storage_read_only",
			"1 when the collection is in storage-degraded read-only mode.", "collection"),
	}
	r.GaugeFunc("gbkmv_scrub_last_age_seconds",
		"Seconds since the last completed scrub pass (-1 before the first).",
		func() float64 {
			ns := m.lastScrubNano.Load()
			if ns == 0 {
				return -1
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
	obs.RegisterRuntimeMetrics(r)
	return m
}

// endpoint resolves (creating on first use) the child set of one
// endpoint×collection pair. The sync.Map load is the hot path.
func (m *Metrics) endpoint(pattern, collection string) *endpointMetrics {
	key := endpointKey{pattern: pattern, collection: collection}
	if em, ok := m.endpoints.Load(key); ok {
		return em.(*endpointMetrics)
	}
	em := &endpointMetrics{
		byClass: [3]*obs.Counter{
			m.httpRequests.With(pattern, collection, "2xx"),
			m.httpRequests.With(pattern, collection, "4xx"),
			m.httpRequests.With(pattern, collection, "5xx"),
		},
		latency: m.httpLatency.With(pattern, collection),
	}
	actual, _ := m.endpoints.LoadOrStore(key, em)
	return actual.(*endpointMetrics)
}

// record books one finished request.
func (em *endpointMetrics) record(status int, d time.Duration) {
	i := 0
	switch {
	case status >= 500:
		i = 2
	case status >= 400:
		i = 1
	}
	em.byClass[i].Inc()
	em.latency.Observe(d.Seconds())
}

// removeCollection ends every series labeled with a deleted collection, so
// the exposition doesn't grow without bound under create/delete churn. The
// next same-named collection starts fresh children from zero.
func (m *Metrics) removeCollection(name string) {
	for _, v := range []*obs.CounterVec{
		m.walBytes, m.walFrames, m.rollbacks, m.tornTails,
		m.qcHits, m.qcMisses, m.qcEvictions,
		m.candTotal, m.prunedTotal, m.estTotal, m.bufferAccepts,
		m.hashedTotal, m.shrinkTotal, m.fencing, m.quarantines,
	} {
		v.Remove(name)
	}
	for _, stage := range []string{"load", "scrub", "transfer"} {
		m.verifyFails.Remove(name, stage)
	}
	for _, v := range []*obs.GaugeVec{
		m.replaySecs, m.qcEntries, m.collRecords, m.collGen,
		m.journaled, m.walOffset, m.walSynced, m.readOnlyG,
	} {
		v.Remove(name)
	}
	for _, v := range []*obs.HistogramVec{m.fsync, m.groupSize, m.batchSize, m.candidates, m.snapPause} {
		v.Remove(name)
	}
	m.removeSegmentChildren(name, 0)
	m.endpoints.Range(func(k, _ any) bool {
		key := k.(endpointKey)
		if key.collection == name {
			m.endpoints.Delete(k)
			m.httpRequests.Remove(key.pattern, name, "2xx")
			m.httpRequests.Remove(key.pattern, name, "4xx")
			m.httpRequests.Remove(key.pattern, name, "5xx")
			m.httpLatency.Remove(key.pattern, name)
		}
		return true
	})
}

// collMetrics is one collection's resolved metric children, hung on the
// Collection at attach time. All methods are nil-safe so collections
// assembled outside a Store (unit tests, tools) instrument nothing and cost
// nothing.
type collMetrics struct {
	fsync       *obs.Histogram
	snapPause   *obs.Histogram
	groupSize   *obs.Histogram
	walBytes    *obs.Counter
	walFrames   *obs.Counter
	rollbacks   *obs.Counter
	qcHits      *obs.Counter
	qcMisses    *obs.Counter
	qcEvictions *obs.Counter
	batchSize   *obs.Histogram
	candidates  *obs.Histogram
	candTotal   *obs.Counter
	pruned      *obs.Counter
	estimated   *obs.Counter
	bufAccepts  *obs.Counter
}

// collMetricsFor resolves the per-collection children once.
func (m *Metrics) collMetricsFor(name string) *collMetrics {
	return &collMetrics{
		fsync:       m.fsync.With(name),
		snapPause:   m.snapPause.With(name),
		groupSize:   m.groupSize.With(name),
		walBytes:    m.walBytes.With(name),
		walFrames:   m.walFrames.With(name),
		rollbacks:   m.rollbacks.With(name),
		qcHits:      m.qcHits.With(name),
		qcMisses:    m.qcMisses.With(name),
		qcEvictions: m.qcEvictions.With(name),
		batchSize:   m.batchSize.With(name),
		candidates:  m.candidates.With(name),
		candTotal:   m.candTotal.With(name),
		pruned:      m.prunedTotal.With(name),
		estimated:   m.estTotal.With(name),
		bufAccepts:  m.bufferAccepts.With(name),
	}
}

func (cm *collMetrics) observeFsync(d time.Duration) {
	if cm != nil {
		cm.fsync.Observe(d.Seconds())
	}
}

// observeSnapPause books one snapshot-encode lock hold (a whole-index encode,
// or one segment's encode when the collection is segmented).
func (cm *collMetrics) observeSnapPause(d time.Duration) {
	if cm != nil {
		cm.snapPause.Observe(d.Seconds())
	}
}

func (cm *collMetrics) observeGroup(members int) {
	if cm != nil {
		cm.groupSize.Observe(float64(members))
	}
}

func (cm *collMetrics) addWAL(bytes, frames int) {
	if cm != nil {
		cm.walBytes.Add(uint64(bytes))
		cm.walFrames.Add(uint64(frames))
	}
}

func (cm *collMetrics) incRollback() {
	if cm != nil {
		cm.rollbacks.Inc()
	}
}

func (cm *collMetrics) observeBatch(queries int) {
	if cm != nil {
		cm.batchSize.Observe(float64(queries))
	}
}

// observeSearch books one search's work counters (from gbkmv.QueryStats).
func (cm *collMetrics) observeSearch(st gbkmv.QueryStats) {
	if cm == nil {
		return
	}
	cm.candidates.Observe(float64(st.Candidates))
	cm.candTotal.Add(uint64(st.Candidates))
	cm.pruned.Add(uint64(st.PrunedByBound))
	cm.estimated.Add(uint64(st.Estimated))
	cm.bufAccepts.Add(uint64(st.BufferAccepts))
}

// buildCounters is the optional engine interface behind the build-counter
// mirror: the gbkmv and gkmv engines expose the hash-once pipeline's work
// counters; other backends simply don't satisfy it.
type buildCounters interface {
	BuildCounters() (elementsHashed, shrinks uint64)
}

// mirrorCollections is the store's scrape hook: point-in-time collection
// state (record counts, generations, WAL offsets, cache residency, build
// counters) is mirrored into registry gauges right before each exposition,
// so the steady-state request path never maintains them.
func (s *Store) mirrorCollections() {
	s.mu.RLock()
	cols := make([]*Collection, 0, len(s.cols))
	for _, c := range s.cols {
		cols = append(cols, c)
	}
	s.mu.RUnlock()
	m := s.metrics
	for _, c := range cols {
		name := c.name
		c.ioMu.Lock()
		if c.journal != nil {
			m.walOffset.With(name).Set(float64(c.journal.Offset()))
			m.walSynced.With(name).Set(float64(c.journal.SyncedOffset()))
		}
		c.ioMu.Unlock()
		c.mu.RLock()
		records := c.eng.Len()
		journaled := c.journaled
		var entries int
		if c.qcache != nil {
			entries = c.qcache.entries()
		}
		var hashed, shrinks uint64
		bc, hasBuild := c.eng.(buildCounters)
		if hasBuild {
			hashed, shrinks = bc.BuildCounters()
		}
		var segRecs []int
		if seg, ok := c.eng.(*gbkmv.Segmented); ok {
			segRecs = seg.SegmentRecords()
		}
		c.mu.RUnlock()
		m.mirrorSegments(name, segRecs)
		m.collRecords.With(name).Set(float64(records))
		m.collGen.With(name).Set(float64(c.queryGen.Load()))
		var ro float64
		if c.readOnly.Load() {
			ro = 1
		}
		m.readOnlyG.With(name).Set(ro)
		m.journaled.With(name).Set(float64(journaled))
		m.qcEntries.With(name).Set(float64(entries))
		if hasBuild {
			m.hashedTotal.With(name).Set(hashed)
			m.shrinkTotal.With(name).Set(shrinks)
		}
	}
}

// mirrorSegments sets the per-segment record gauges of one collection and
// retires children past the current segment count (a replacement build may
// have fewer segments, or none).
func (m *Metrics) mirrorSegments(name string, segRecs []int) {
	for i, n := range segRecs {
		m.segRecords.With(name, strconv.Itoa(i)).Set(float64(n))
	}
	m.removeSegmentChildren(name, len(segRecs))
	if len(segRecs) > 0 {
		m.segCounts.Store(name, len(segRecs))
	}
}

// removeSegmentChildren ends the gbkmv_segment_records series of segments
// keep and above, using the remembered last mirrored count (Remove needs the
// exact label values). keep == 0 drops the whole collection.
func (m *Metrics) removeSegmentChildren(name string, keep int) {
	prev, ok := m.segCounts.Load(name)
	if !ok {
		return
	}
	for i := keep; i < prev.(int); i++ {
		m.segRecords.Remove(name, strconv.Itoa(i))
	}
	if keep == 0 {
		m.segCounts.Delete(name)
	}
}

// Registry returns the store's metric registry, for serving GET /metrics and
// for registering additional process-level metrics (cmd/gbkmvd).
func (s *Store) Registry() *obs.Registry { return s.metrics.reg }
