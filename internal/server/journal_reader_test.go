package server

import (
	"bytes"
	"reflect"
	"testing"
)

// scannerFixture builds a frame stream of five entries (mixing tagged and
// untagged frames) and returns the stream plus each frame's end boundary.
func scannerFixture(t *testing.T) (frames []byte, boundaries []int64, want []journalEntry) {
	t.Helper()
	want = []journalEntry{
		{Tokens: []string{"a", "b"}},
		{Tokens: []string{"c"}, RequestID: "r1"},
		{Tokens: []string{"d", "e", "f"}, RequestID: "r1"},
		{Tokens: []string{"g"}},
		{Tokens: []string{"h", "i"}, RequestID: "r2"},
	}
	for _, e := range want {
		var err error
		frames, err = marshalFrame(frames, e.Tokens, e.RequestID)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, int64(len(frames)))
	}
	return frames, boundaries, want
}

// TestScannerEveryCutPoint cuts the stream at every possible byte length:
// the scanner must return exactly the fully-contained frames, report the
// last intact boundary as its offset, and never error — a cut is either a
// clean end (on a boundary) or a torn tail (anywhere else).
func TestScannerEveryCutPoint(t *testing.T) {
	frames, boundaries, want := scannerFixture(t)
	for cut := 0; cut <= len(frames); cut++ {
		s := newFrameScanner(frames[:cut], 0, "cut")
		got, err := s.scanAll()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantN := 0
		var wantOff int64
		for i, b := range boundaries {
			if int64(cut) >= b {
				wantN, wantOff = i+1, b
			}
		}
		if len(got) != wantN || s.Offset() != wantOff {
			t.Fatalf("cut %d: %d entries at offset %d, want %d at %d", cut, len(got), s.Offset(), wantN, wantOff)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("cut %d entry %d = %+v, want %+v", cut, i, got[i], want[i])
			}
		}
	}
}

// TestScannerResync proves the torn-tail offset is a valid resume point:
// rescanning the remainder of the stream from Offset() yields exactly the
// entries the cut withheld — the contract both the follower's reconnect
// and startup replay's truncation rely on.
func TestScannerResync(t *testing.T) {
	frames, boundaries, want := scannerFixture(t)
	// Cut mid-way through the fourth frame.
	cut := int(boundaries[3]) - 3
	s := newFrameScanner(frames[:cut], 0, "first")
	head, err := s.scanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(head) != 3 || s.Offset() != boundaries[2] {
		t.Fatalf("head scan: %d entries at %d, want 3 at %d", len(head), s.Offset(), boundaries[2])
	}
	// Resume from the reported offset over the rest of the stream (base
	// offset carried through, as the follower does when re-requesting).
	s2 := newFrameScanner(frames[s.Offset():], s.Offset(), "resync")
	tail, err := s2.scanAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := append(head, tail...); !reflect.DeepEqual(got, want) {
		t.Fatalf("resynced entries = %+v, want %+v", got, want)
	}
	if s2.Offset() != int64(len(frames)) {
		t.Fatalf("resynced offset = %d, want %d", s2.Offset(), len(frames))
	}
}

// TestScannerInteriorCorruptionIsHardError: a bad payload CRC with frames
// after it can't be a torn tail — silently truncating would drop
// acknowledged entries.
func TestScannerInteriorCorruption(t *testing.T) {
	frames, _, _ := scannerFixture(t)
	mangled := bytes.Clone(frames)
	mangled[13] ^= 0xff // inside the first frame's payload
	if _, err := newFrameScanner(mangled, 0, "corrupt").scanAll(); err == nil {
		t.Fatal("interior corruption not reported")
	}
}

// TestScannerCorruptFinalFrame: with a known size bound, a bad CRC on the
// very last frame is indistinguishable from a torn append and must scan as
// one; with the bound unknown (a network stream of sealed frames), the same
// bytes are corruption.
func TestScannerCorruptFinalFrame(t *testing.T) {
	frames, boundaries, _ := scannerFixture(t)
	mangled := bytes.Clone(frames)
	mangled[len(mangled)-1] ^= 0xff
	s := newFrameScanner(mangled, 0, "tail")
	got, err := s.scanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || s.Offset() != boundaries[3] {
		t.Fatalf("%d entries at %d, want 4 at %d", len(got), s.Offset(), boundaries[3])
	}
	su := newJournalScanner(bytes.NewReader(mangled), 0, -1, "stream")
	if _, err := su.scanAll(); err == nil {
		t.Fatal("corrupt frame on an unbounded stream not reported")
	}
}

// TestScannerCorruptHeaderCRC: a complete header whose length checksum
// doesn't match is corruption everywhere — a torn write produces a short
// header, never a wrong one.
func TestScannerCorruptHeaderCRC(t *testing.T) {
	frames, boundaries, _ := scannerFixture(t)
	mangled := bytes.Clone(frames)
	mangled[boundaries[1]+5] ^= 0xff // length CRC of the third frame
	if _, err := newFrameScanner(mangled, 0, "hdr").scanAll(); err == nil {
		t.Fatal("corrupt header CRC not reported")
	}
}

// TestForEachRidRun checks the batch partitioning both replay paths share.
func TestForEachRidRun(t *testing.T) {
	_, _, want := scannerFixture(t)
	type run struct {
		start, end int
		rid        string
	}
	var got []run
	forEachRidRun(want, func(i, j int, rid string) { got = append(got, run{i, j, rid}) })
	expect := []run{{0, 1, ""}, {1, 3, "r1"}, {3, 4, ""}, {4, 5, "r2"}}
	if !reflect.DeepEqual(got, expect) {
		t.Fatalf("runs = %v, want %v", got, expect)
	}
}
