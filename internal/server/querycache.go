package server

import (
	"container/list"
	"encoding/binary"
	"slices"
	"sync"

	"gbkmv"
	"gbkmv/internal/obs"
)

// queryCache is the per-collection prepared-query cache: a sharded LRU over
// engine PreparedQuerys keyed by (collection query generation, canonical
// token key). Hashing a query into its signature is the dominant per-request
// cost for hot queries; the cache computes it once per (generation, query)
// and hands out cheap clones.
//
// Correctness rests on two invariants enforced by the Collection:
//
//   - The query generation (Collection.queryGen) is bumped inside the same
//     write-lock critical section that mutates the engine, and both lookups
//     and stores read it under the collection's read lock. A cached entry is
//     therefore only ever served against the *identical* engine state it was
//     prepared under; entries keyed by an older generation simply stop
//     matching and age out through the LRU (no scan, no explicit flush).
//   - The cached PreparedQuery instance is never used for a query: lookup
//     returns the shared instance, and callers either Clone it (outside the
//     shard lock — safe because the shared instance is never mutated, and a
//     concurrent put of the same key swaps the entry's interface value
//     rather than mutating the old instance) or re-put it verbatim under an
//     alias key. All per-request mutable state (size overrides, the gbkmv
//     threshold-tracking rebuild slot) lives in the clones.
//
// The cache is two-keyed. The canonical (L2) key is the query's token
// *set* — distinct tokens, sorted, each length-prefixed (uvarint) so no
// token content can alias a boundary — which means "a b", "b a" and
// "b a b" share one entry and one signature. The raw (L1) key is the
// verbatim JSON bytes of the query array: a hot query repeats byte-
// identically, and an exact-bytes hit skips the per-token JSON decode and
// the canonicalization entirely, not just the sketch. Both key spaces live
// in the same LRU (distinguished by a prefix byte) and may reference the
// same shared PreparedQuery; a raw key that misses falls back to the
// canonical lookup and installs itself as an alias on the way out.
type queryCache struct {
	shards []qcShard
	// The counters are owned by the Collection (registry children when the
	// store has metrics, standalone otherwise), not by the cache: a cache
	// swap (SetQueryCacheSize) must not reset the collection's totals.
	hits, misses, evictions *obs.Counter
}

// Key-space prefixes: a raw-bytes key can never collide with a canonical
// encoding.
const (
	rawKeyPrefix   = 'r'
	canonKeyPrefix = 'c'
)

// maxRawKeyBytes bounds the raw-key alias: outsized query bodies skip L1
// (they still dedupe through the canonical key when small enough in tokens)
// so a few giant queries cannot dominate the cache's memory.
const maxRawKeyBytes = 4096

// maxCachedQueryTokens bounds what enters the cache at all: beyond it a
// query is prepared uncached. The cache capacity counts entries, not bytes,
// and both the canonical key and the cached prepared query retain O(|Q|)
// state — without this bound an unauthenticated client posting distinct
// multi-megabyte queries could pin entries × |Q| memory per collection.
const maxCachedQueryTokens = 1024

// qcShards is the shard count (power of two). Per-collection caches see at
// most one HTTP handler per in-flight request, so a small constant keeps the
// lock spread wide enough without bloating empty caches.
const qcShards = 8

type qcShard struct {
	mu  sync.Mutex
	cap int // max entries in this shard (≥ 1)
	m   map[string]*list.Element
	lru list.List // front = most recently used
}

// qcEntry is one cached prepared query. A gen older than the collection's
// current query generation makes the entry dead: lookups miss it and the
// next put for the same key overwrites it in place.
type qcEntry struct {
	key string
	gen uint64
	pq  gbkmv.PreparedQuery
}

// newQueryCache returns a cache holding up to capacity entries in total, or
// nil when capacity <= 0 (caching disabled). Counters are standalone; store
// paths use newQueryCacheWith so totals land in the registry and survive
// cache swaps.
func newQueryCache(capacity int) *queryCache {
	return newQueryCacheWith(capacity, &obs.Counter{}, &obs.Counter{}, &obs.Counter{})
}

// newQueryCacheWith is newQueryCache with caller-owned counters.
func newQueryCacheWith(capacity int, hits, misses, evictions *obs.Counter) *queryCache {
	if capacity <= 0 {
		return nil
	}
	qc := &queryCache{shards: make([]qcShard, qcShards),
		hits: hits, misses: misses, evictions: evictions}
	per := (capacity + qcShards - 1) / qcShards
	if per < 1 {
		per = 1
	}
	for i := range qc.shards {
		qc.shards[i].cap = per
		qc.shards[i].m = make(map[string]*list.Element)
	}
	return qc
}

// qkeyScratch holds the pooled buffers of one request's key building (the
// raw and canonical keys coexist on the miss path, hence two buffers).
type qkeyScratch struct {
	toks []string
	key  []byte
	raw  []byte
}

var qkeyPool = sync.Pool{New: func() any { return new(qkeyScratch) }}

// canonicalKey writes the canonical cache key of a token query into the
// scratch buffer and returns it (valid until the scratch is reused): the
// distinct tokens sorted, each prefixed with its uvarint length. The
// length prefix — rather than a separator byte — keeps keys unambiguous for
// arbitrary token bytes, so two different queries can never share a key.
func canonicalKey(tokens []string, sc *qkeyScratch) []byte {
	sc.toks = append(sc.toks[:0], tokens...)
	slices.Sort(sc.toks)
	key := append(sc.key[:0], canonKeyPrefix)
	for i, t := range sc.toks {
		if i > 0 && t == sc.toks[i-1] {
			continue // duplicates don't change the query set
		}
		key = binary.AppendUvarint(key, uint64(len(t)))
		key = append(key, t...)
	}
	sc.key = key
	return key
}

// rawQueryKey writes the exact-bytes cache key of a query's verbatim JSON
// into the scratch buffer, or nil when the query is too large to alias.
func rawQueryKey(raw []byte, sc *qkeyScratch) []byte {
	if len(raw) > maxRawKeyBytes {
		return nil
	}
	sc.raw = append(append(sc.raw[:0], rawKeyPrefix), raw...)
	return sc.raw
}

// shardFor selects a shard by FNV-1a over the canonical key.
func (qc *queryCache) shardFor(key []byte) *qcShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return &qc.shards[h&(qcShards-1)]
}

// lookup returns the shared cached prepared query for (gen, key), if
// present and current. The map lookup uses the raw key bytes (no string
// allocation on the hit path). Counting is the caller's job — one request
// may probe both key spaces but must count as one hit or one miss. The
// returned instance is shared: callers may Clone it (read-only) or re-put
// it under an alias key, never use it for a query directly.
func (qc *queryCache) lookup(gen uint64, key []byte) (gbkmv.PreparedQuery, bool) {
	if key == nil {
		return nil, false
	}
	sh := qc.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.m[string(key)]
	if !ok || el.Value.(*qcEntry).gen != gen {
		sh.mu.Unlock()
		return nil, false
	}
	sh.lru.MoveToFront(el)
	pq := el.Value.(*qcEntry).pq
	sh.mu.Unlock()
	return pq, true
}

// put stores pq for (gen, key). pq must never again be used directly by the
// caller for queries (hand in the freshly prepared instance — or a shared
// instance from lookup, for alias keys — and query through a clone). An
// existing entry for the same key — current or stale — is overwritten in
// place, so dead generations never accumulate behind a hot key.
func (qc *queryCache) put(gen uint64, key []byte, pq gbkmv.PreparedQuery) {
	if key == nil {
		return
	}
	sh := qc.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.m[string(key)]; ok {
		e := el.Value.(*qcEntry)
		e.gen, e.pq = gen, pq
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	if sh.lru.Len() >= sh.cap {
		back := sh.lru.Back()
		delete(sh.m, back.Value.(*qcEntry).key)
		sh.lru.Remove(back)
		qc.evictions.Add(1)
	}
	k := string(key)
	sh.m[k] = sh.lru.PushFront(&qcEntry{key: k, gen: gen, pq: pq})
	sh.mu.Unlock()
}

// QueryCacheStats is the per-collection cache report surfaced in /stats.
type QueryCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// stats snapshots the counters. Entries takes each shard lock briefly.
func (qc *queryCache) stats() QueryCacheStats {
	return QueryCacheStats{
		Hits:      qc.hits.Value(),
		Misses:    qc.misses.Value(),
		Evictions: qc.evictions.Value(),
		Entries:   qc.entries(),
	}
}

// entries counts resident entries, taking each shard lock briefly.
func (qc *queryCache) entries() int {
	n := 0
	for i := range qc.shards {
		sh := &qc.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
