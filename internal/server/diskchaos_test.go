package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"

	"gbkmv/internal/fsx"
)

// Disk-chaos suite: every storage fault class injected through fsx.FaultFS
// (and raw on-disk corruption) against a live store. The acceptance bar, per
// fault class: the store either rejects the write durably (rollback, no
// acked loss), quarantines the corrupt generation and falls back, or enters
// explicit read-only degradation — it never loads a corrupt snapshot
// silently and never loses an acknowledged insert.

// newChaosServer builds a store over a FaultFS and serves it.
func newChaosServer(t *testing.T, dir string, ffs *fsx.FaultFS) (*Store, *httptest.Server) {
	t.Helper()
	store, err := NewStoreWithFS(dir, ffs, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(store))
	t.Cleanup(ts.Close)
	return store, ts
}

// storeMetrics scrapes the store's registry as Prometheus text.
func storeMetrics(t *testing.T, store *Store) string {
	t.Helper()
	var sb strings.Builder
	if err := store.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestDiskChaosJournalEIOReadOnlyAndRecover: an EIO on the journal write
// path fails the insert with a 5xx, rolls the journal back (the insert is
// not acked, so nothing is lost), flips the collection into read-only mode
// — writes shed 503, reads keep serving — and the storage probe restores
// writability once the disk heals.
func TestDiskChaosJournalEIOReadOnlyAndRecover(t *testing.T) {
	ffs := &fsx.FaultFS{Match: "journal-"}
	store, ts := newChaosServer(t, t.TempDir(), ffs)
	defer store.Close()
	buildRestaurants(t, ts, "rest")
	if code, m := doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["acked", "ok"]]}`); code != http.StatusOK {
		t.Fatalf("healthy insert: %d %v", code, m)
	}

	ffs.FailWrites(1, syscall.EIO)
	code, m := doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["doomed"]]}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("insert under EIO: %d %v, want 500", code, m)
	}
	c, err := store.Get("rest")
	if err != nil {
		t.Fatal(err)
	}
	if ro, reason := c.ReadOnlyState(); !ro || reason == "" {
		t.Fatalf("EIO must flip read-only, got ro=%v reason=%q", ro, reason)
	}

	// Writes shed with a retryable 503 while reads keep serving.
	code, m = doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["shed"]]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("insert in read-only mode: %d %v, want 503", code, m)
	}
	if code, m := doJSON(t, ts, "POST", "/collections/rest/search", `{"query": ["five", "guys"], "threshold": 0.5}`); code != http.StatusOK || m["count"] != float64(2) {
		t.Fatalf("read in read-only mode: %d %v", code, m)
	}
	if _, m := doJSON(t, ts, "GET", "/healthz", ""); m["status"] != "degraded" {
		t.Fatalf("healthz in read-only mode: %v, want degraded", m)
	}

	// The fault was one-shot: the disk is healthy again, so the probe clears
	// read-only and writes flow.
	store.probeReadOnly()
	if ro, _ := c.ReadOnlyState(); ro {
		t.Fatal("probe on a healthy disk must clear read-only mode")
	}
	if code, m := doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["recovered"]]}`); code != http.StatusOK {
		t.Fatalf("insert after recovery: %d %v", code, m)
	}
	if _, m := doJSON(t, ts, "GET", "/healthz", ""); m["status"] != "ok" {
		t.Fatalf("healthz after recovery: %v", m)
	}
	mt := storeMetrics(t, store)
	if !strings.Contains(mt, `gbkmv_disk_errors_total{op="`) {
		t.Fatalf("disk error metric missing:\n%s", mt)
	}
	if !strings.Contains(mt, `gbkmv_shed_load_total{reason="storage_readonly"} 1`) {
		t.Fatal("storage_readonly shed not booked")
	}
}

// TestDiskChaosENOSPC: a full disk (sticky ENOSPC with partial writes)
// degrades to read-only; the rolled-back journal never acks the failed
// batch; recovery waits until the probe actually succeeds.
func TestDiskChaosENOSPC(t *testing.T) {
	ffs := &fsx.FaultFS{}
	store, ts := newChaosServer(t, t.TempDir(), ffs)
	defer store.Close()
	buildRestaurants(t, ts, "rest")

	ffs.WriteBudget(0) // disk full: every write fails, nothing persists
	if code, _ := doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["enospc"]]}`); code != http.StatusInternalServerError {
		t.Fatalf("insert on full disk: %d, want 500", code)
	}
	c, _ := store.Get("rest")
	if ro, _ := c.ReadOnlyState(); !ro {
		t.Fatal("ENOSPC must flip read-only")
	}
	// The probe fails too — the disk is still full — so the mode sticks.
	store.probeReadOnly()
	if ro, _ := c.ReadOnlyState(); !ro {
		t.Fatal("probe on a full disk must not clear read-only mode")
	}
	// Reads keep serving throughout.
	if code, _ := doJSON(t, ts, "POST", "/collections/rest/search", `{"query": ["five"], "threshold": 0.1}`); code != http.StatusOK {
		t.Fatalf("read on full disk: %d", code)
	}

	ffs.WriteBudget(-1) // space freed
	store.probeReadOnly()
	if ro, _ := c.ReadOnlyState(); ro {
		t.Fatal("probe after space freed must clear read-only mode")
	}
	if code, m := doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["room", "again"]]}`); code != http.StatusOK {
		t.Fatalf("insert after recovery: %d %v", code, m)
	}
	if got := ffs.Injected("enospc"); got < 1 {
		t.Fatalf("enospc injections = %d", got)
	}
}

// TestDiskChaosSnapshotFailureKeepsCommittedGeneration: EIO mid-snapshot
// (torn index write) aborts before the commit point — the committed
// generation stays intact on disk and keeps serving, the snapshot endpoint
// sheds while degraded, and a restart loads the old generation cleanly.
func TestDiskChaosSnapshotFailureKeepsCommittedGeneration(t *testing.T) {
	dir := t.TempDir()
	ffs := &fsx.FaultFS{Match: "index-"}
	store, ts := newChaosServer(t, dir, ffs)
	buildRestaurants(t, ts, "rest")
	doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["journaled", "entry"]]}`)
	want := searchBoth(t, ts, "rest")

	ffs.TornWrites(1)
	if _, err := store.Snapshot("rest"); err == nil {
		t.Fatal("snapshot through a torn write must fail")
	}
	c, _ := store.Get("rest")
	if ro, _ := c.ReadOnlyState(); !ro {
		t.Fatal("torn write (EIO) must flip read-only")
	}
	if code, _ := doJSON(t, ts, "POST", "/collections/rest/snapshot", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("snapshot while read-only: %d, want 503", code)
	}
	// The committed generation still serves.
	if got := searchBoth(t, ts, "rest"); !reflect.DeepEqual(got, want) {
		t.Fatalf("reads after failed snapshot:\n got  %v\n want %v", got, want)
	}
	if m, err := readMeta(nil, filepath.Join(dir, "rest")); err != nil || m.Generation != 1 {
		t.Fatalf("committed generation after failed snapshot: %v gen %d, want 1", err, m.Generation)
	}

	// Crash and restart: the half-written gen-2 file is dropped; generation 1
	// plus its journal replays to the same answers.
	ts.Close()
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	store2, ts2 := newServer(t, dir)
	defer store2.Close()
	if got := searchBoth(t, ts2, "rest"); !reflect.DeepEqual(got, want) {
		t.Fatalf("restart after failed snapshot:\n got  %v\n want %v", got, want)
	}
}

// flipByte flips one bit in the middle of the file at path.
func flipByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatalf("%s is empty", path)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDiskChaosBitFlipFallbackDifferential is the kill-and-restart
// acceptance test: a committed snapshot bit-flipped after a crash is
// detected at load, quarantined, and the store falls back to the prior
// generation plus full journal replay — converging to search results
// identical to an uncorrupted twin that went through the same history.
func TestDiskChaosBitFlipFallbackDifferential(t *testing.T) {
	history := func(t *testing.T, dir string) {
		t.Helper()
		store, ts := newServer(t, dir)
		buildRestaurants(t, ts, "rest")
		doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["pre", "snapshot", "burgers"]]}`)
		if _, err := store.Snapshot("rest"); err != nil { // gen 2, parent 1
			t.Fatal(err)
		}
		doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["post", "snapshot", "fries"]]}`)
		// Kill without Close: acked inserts are fsynced by the group commit,
		// the shutdown snapshot never runs.
		ts.Close()
	}
	corrupt, control := t.TempDir(), t.TempDir()
	history(t, corrupt)
	history(t, control)

	// Post-crash corruption: one bit flips in the committed index snapshot.
	flipByte(t, filepath.Join(corrupt, "rest", "index-2.snap"))

	cstore, cts := newServer(t, control)
	defer cstore.Close()
	want := searchBoth(t, cts, "rest")

	store, ts := newServer(t, corrupt)
	defer store.Close()
	if got := searchBoth(t, ts, "rest"); !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback state diverged from uncorrupted twin:\n got  %v\n want %v", got, want)
	}
	c, err := store.Get("rest")
	if err != nil {
		t.Fatal(err)
	}
	if g := c.QuarantinedGeneration(); g != 2 {
		t.Fatalf("quarantined generation = %d, want 2", g)
	}
	if _, err := os.Stat(filepath.Join(corrupt, "rest", "quarantine-2", "index-2.snap")); err != nil {
		t.Fatalf("corrupt index not quarantined: %v", err)
	}
	if _, m := doJSON(t, ts, "GET", "/healthz", ""); m["status"] != "degraded" {
		t.Fatalf("healthz with quarantined generation: %v", m)
	}
	_, m := doJSON(t, ts, "GET", "/collections/rest/stats", "")
	storage, _ := m["storage"].(map[string]any)
	if storage == nil || storage["status"] != "quarantined:2" {
		t.Fatalf("stats storage block: %v", m["storage"])
	}
	if evs, _ := storage["quarantines"].([]any); len(evs) != 1 {
		t.Fatalf("quarantine events: %v", storage["quarantines"])
	}
	if !strings.Contains(storeMetrics(t, store), `gbkmv_snapshot_verify_failures_total{collection="rest",stage="load"} 1`) {
		t.Fatal("load-stage verify failure not booked")
	}

	// Writes still flow (the disk is healthy — only history rotted), and a
	// fresh snapshot supersedes the quarantined generation.
	if code, m := doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["after", "fallback"]]}`); code != http.StatusOK {
		t.Fatalf("insert after fallback: %d %v", code, m)
	}
	if _, err := store.Snapshot("rest"); err != nil {
		t.Fatal(err)
	}
	if g := c.QuarantinedGeneration(); g != 0 {
		t.Fatalf("quarantine not cleared by repair snapshot: gen %d", g)
	}
	if _, m := doJSON(t, ts, "GET", "/healthz", ""); m["status"] != "ok" {
		t.Fatalf("healthz after repair snapshot: %v", m)
	}
}

// TestDiskChaosLyingFsync: a disk that reports fsync success while dropping
// the bytes (the nastiest fault class) is caught by the checksum at the
// next load — the commit record honestly names bytes that are not there —
// and the store falls back instead of serving a truncated snapshot.
func TestDiskChaosLyingFsync(t *testing.T) {
	dir := t.TempDir()
	ffs := &fsx.FaultFS{Match: "index-2.snap"}
	store, ts := newChaosServer(t, dir, ffs)
	buildRestaurants(t, ts, "rest")
	doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["pre", "snapshot", "burgers"]]}`)

	ffs.LieOnSync(true)
	if _, err := store.Snapshot("rest"); err != nil { // commits gen 2; index-2 "synced"
		t.Fatal(err)
	}
	ffs.LieOnSync(false)
	doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["post", "snapshot", "fries"]]}`)
	want := searchBoth(t, ts, "rest")
	ts.Close()

	// Power loss: everything honestly fsynced survives; index-2.snap — whose
	// fsync lied — is dropped back to its durable prefix (nothing).
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	store2, ts2 := newServer(t, dir)
	defer store2.Close()
	if got := searchBoth(t, ts2, "rest"); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovery after lying fsync:\n got  %v\n want %v", got, want)
	}
	c, err := store2.Get("rest")
	if err != nil {
		t.Fatal(err)
	}
	if g := c.QuarantinedGeneration(); g != 2 {
		t.Fatalf("quarantined generation = %d, want 2", g)
	}
}

// TestDiskChaosScrubDetectsAndRepairs: the background scrubber's pass finds
// in-place corruption of a committed file, quarantines the generation while
// reads keep serving, and — on a leader — self-repairs by writing a fresh
// verified snapshot from the intact in-memory state.
func TestDiskChaosScrubDetectsAndRepairs(t *testing.T) {
	dir := t.TempDir()
	store, ts := newServer(t, dir)
	defer store.Close()
	buildRestaurants(t, ts, "rest")
	want := searchBoth(t, ts, "rest")

	if rep := store.ScrubNow(); len(rep.Failures) != 0 || rep.Collections != 1 {
		t.Fatalf("clean scrub: %+v", rep)
	}

	flipByte(t, filepath.Join(dir, "rest", "vocab-1.snap"))
	rep := store.ScrubNow()
	if len(rep.Failures) != 1 {
		t.Fatalf("scrub over corruption: %+v", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, "rest", "quarantine-1", "vocab-1.snap")); err != nil {
		t.Fatalf("corrupt vocab not quarantined: %v", err)
	}
	// Leader self-repair: the in-memory state was never corrupt, so the scrub
	// snapshotted a verified generation 2 and cleared the quarantine flag.
	c, _ := store.Get("rest")
	if g := c.QuarantinedGeneration(); g != 0 {
		t.Fatalf("repair snapshot did not clear quarantine: gen %d", g)
	}
	if m, err := readMeta(nil, filepath.Join(dir, "rest")); err != nil || m.Generation != 2 {
		t.Fatalf("repair snapshot: %v gen %d, want 2", err, m.Generation)
	}
	if got := searchBoth(t, ts, "rest"); !reflect.DeepEqual(got, want) {
		t.Fatalf("reads across scrub repair:\n got  %v\n want %v", got, want)
	}
	mt := storeMetrics(t, store)
	for _, want := range []string{
		`gbkmv_snapshot_verify_failures_total{collection="rest",stage="scrub"} 1`,
		`gbkmv_quarantined_generations_total{collection="rest"} 1`,
		"gbkmv_scrub_failures_total 1",
		"gbkmv_scrub_passes_total 2",
	} {
		if !strings.Contains(mt, want) {
			t.Fatalf("metric %q missing:\n%s", want, mt)
		}
	}
	// The repaired generation passes the next pass.
	if rep := store.ScrubNow(); len(rep.Failures) != 0 {
		t.Fatalf("scrub after repair: %+v", rep)
	}
}

// TestDiskChaosSilentBitFlipOnWrite: a disk that corrupts bytes on the way
// down while reporting success is caught at the next load by the checksum
// computed from the bytes the writer *meant* to write.
func TestDiskChaosSilentBitFlipOnWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := &fsx.FaultFS{Match: "vocab-2.snap"}
	store, ts := newChaosServer(t, dir, ffs)
	buildRestaurants(t, ts, "rest")
	doJSON(t, ts, "POST", "/collections/rest/records", `{"records": [["pre", "snapshot", "burgers"]]}`)

	ffs.FlipBits(1)
	if _, err := store.Snapshot("rest"); err != nil { // silently corrupted on disk
		t.Fatal(err)
	}
	if got := ffs.Injected("flip"); got != 1 {
		t.Fatalf("flip injections = %d", got)
	}
	want := searchBoth(t, ts, "rest")
	ts.Close()

	store2, ts2 := newServer(t, dir)
	defer store2.Close()
	if got := searchBoth(t, ts2, "rest"); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovery after silent write corruption:\n got  %v\n want %v", got, want)
	}
	c, err := store2.Get("rest")
	if err != nil {
		t.Fatal(err)
	}
	if g := c.QuarantinedGeneration(); g != 2 {
		t.Fatalf("quarantined generation = %d, want 2", g)
	}
}
