package server

import (
	"errors"
	"fmt"
	"path/filepath"
)

// Follower side of replication: the store-level role switch and the
// collection-level apply path. The follower process logic (bootstrap,
// stream tailing, reconnect) lives in internal/repl; this file is the
// surface it drives, kept inside package server because it works the same
// locks and invariants as the local write path.
//
// The apply path deliberately mirrors the leader's commit path, with the
// roles of journal and client swapped: the leader journals what clients
// send, the follower journals what the leader's journal already contains.
// Frames are appended verbatim, flushed and fsynced *before* they are
// applied to the engine — the follower's acknowledged position (its own
// SyncedOffset) never outruns its disk, so a follower crash replays its
// local journal on restart and resumes the stream from exactly where it
// left off, with no re-bootstrap and no gap. Applying through the same
// applyBatch the leader uses keeps every derived invariant for free:
// record ids assign in journal order, the duplicate-detection window
// rebuilds from the echoed request ids, and the query generation bumps
// under the write lock so the prepared-query cache never serves stale
// hits.

// ErrReplDiverged marks a replica whose local journal position no longer
// matches what the leader serves — a stale generation, an offset mismatch,
// or a handoff to an unexpected generation. The follower recovers by
// re-bootstrapping; the error exists so it can tell that apart from a
// transient storage failure.
var ErrReplDiverged = errors.New("server: replica diverged from leader")

// SetFollower marks the store as a read replica of the leader at the given
// base URL ("" reverts to leader role). Every write endpoint then fences
// with a redirect to the leader; Close stops snapshotting (a replica's
// generation must track the leader's).
func (s *Store) SetFollower(leaderURL string) {
	s.leaderURL.Store(leaderURL)
	if leaderURL == "" {
		s.chainDepth.Store(0)
	}
}

// FollowerLeader returns the leader base URL, or "" when this store is the
// leader.
func (s *Store) FollowerLeader() string {
	v, _ := s.leaderURL.Load().(string)
	return v
}

// SetReadyCheck installs an extra /readyz gate: the endpoint reports 503
// with the returned reason until fn reports true. The follower uses it to
// keep load balancers away until bootstrap finished and lag is bounded.
func (s *Store) SetReadyCheck(fn func() (ok bool, reason string)) { s.readyCheck.Store(fn) }

// SetPromoteHandler installs the function POST /promote runs — the
// follower's promotion sequence (stop replicating, roll every generation,
// drop write fencing). Installed by repl.New; nil on a leader.
func (s *Store) SetPromoteHandler(fn func() error) { s.promoteFn.Store(fn) }

func (s *Store) promoteHandler() func() error {
	fn, _ := s.promoteFn.Load().(func() error)
	return fn
}

// SetChainDepth records this node's distance from the true leader (0 on the
// leader itself, upstream+1 on a follower). WAL responses advertise it so
// downstream replicas learn their own depth; /metrics exposes it as the
// chain-depth gauge.
func (s *Store) SetChainDepth(d int64) { s.chainDepth.Store(d) }

// ChainDepth reports the node's replication chain depth (0 = leader).
func (s *Store) ChainDepth() int64 { return s.chainDepth.Load() }

func (s *Store) readyGate() (bool, string) {
	if fn, ok := s.readyCheck.Load().(func() (bool, string)); ok && fn != nil {
		return fn()
	}
	return true, ""
}

// SetReplStatsProvider installs the per-collection replication-state
// source /stats annotates responses from (nil for collections the provider
// doesn't track).
func (s *Store) SetReplStatsProvider(fn func(name string) *ReplStats) { s.replStats.Store(fn) }

func (s *Store) replStatsFor(name string) *ReplStats {
	if fn, ok := s.replStats.Load().(func(string) *ReplStats); ok && fn != nil {
		return fn(name)
	}
	return nil
}

// ReplStats is one collection's replication state as seen by its follower,
// embedded in /stats. Lag in bytes is exact (the follower's journal is
// byte-identical to the leader's, so it is a subtraction of offsets in the
// same stream); lag in entries compares the leader's applied count against
// the local one and is exact at quiescence; lag in seconds is 0 while
// caught up and otherwise the time since the replica last was.
type ReplStats struct {
	Leader             string  `json:"leader"`
	Bootstrapped       bool    `json:"bootstrapped"`
	BootstrapSeconds   float64 `json:"bootstrap_seconds,omitempty"`
	Generation         uint64  `json:"generation"`
	AppliedOffsetBytes int64   `json:"applied_offset_bytes"`
	LeaderSyncedBytes  int64   `json:"leader_synced_offset_bytes"`
	LagBytes           int64   `json:"replica_lag_bytes"`
	AppliedEntries     int     `json:"applied_entries"`
	LagEntries         int     `json:"replica_lag_entries"`
	LagSeconds         float64 `json:"replica_lag_seconds"`
	StreamReconnects   int64   `json:"stream_reconnects"`
	// ConsecutiveFailures counts stream sessions that have ended in an error
	// since the last successful exchange with the upstream; ReconnectBackoff
	// is the jittered delay the replica last slept (or is sleeping) before
	// retrying. Both zero while the stream is healthy.
	ConsecutiveFailures int64   `json:"consecutive_failures"`
	ReconnectBackoff    float64 `json:"reconnect_backoff_seconds"`
	// ChainDepth is this node's distance from the true leader (1 for a
	// follower of the leader, 2 for a follower of a follower, ...).
	ChainDepth int64 `json:"chain_depth"`
}

// Metrics exposes the store's metric surface so the follower can register
// its own instruments on the shared registry.
func (s *Store) Metrics() *Metrics { return s.metrics }

// CollectionDir returns the directory the named collection lives (or will
// live) in — where the follower's bootstrap writes the transferred
// snapshot files before InstallReplica loads them.
func (s *Store) CollectionDir(name string) (string, error) {
	if s.dir == "" {
		return "", ErrNoPersistence
	}
	if !ValidName(name) {
		return "", ErrBadName
	}
	return filepath.Join(s.dir, name), nil
}

// ReplicaSnapshotPaths returns where a follower's bootstrap writes the
// transferred generation files: the index and vocabulary snapshots, and the
// meta.json commit record. The bootstrap must write meta last (via a tmp
// file renamed into place) — exactly like a local snapshot, it is the
// commit point that makes the generation loadable.
func ReplicaSnapshotPaths(dir string, gen uint64) (index, vocab, metaFile string) {
	return indexPath(dir, gen), vocabPath(dir, gen), metaPath(dir)
}

// InstallReplica loads the collection from its directory — exactly the
// startup path: committed snapshot plus journal replay — and installs it,
// replacing any previous incarnation. The follower calls it after writing
// a transferred snapshot (bootstrap) and after any re-bootstrap.
func (s *Store) InstallReplica(name string) (*Collection, error) {
	dir, err := s.CollectionDir(name)
	if err != nil {
		return nil, err
	}
	s.opMu.Lock()
	defer s.opMu.Unlock()
	c, err := loadCollection(s.fs, dir, s.logf)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	old := s.cols[name]
	cacheCap := s.cacheCap
	s.mu.RUnlock()
	if old != nil {
		old.closeJournal()
		s.metrics.removeCollection(name)
	}
	s.attach(c, cacheCap)
	s.mu.Lock()
	s.cols[name] = c
	s.mu.Unlock()
	return c, nil
}

// RollGeneration performs the follower's half of a generation handoff: the
// leader snapshotted, and this replica — having applied the superseded
// journal in full, so its state equals the snapshot's — takes its own
// snapshot to advance to the same generation with an empty journal. target
// must be exactly the next generation; anything else means the replica
// missed a snapshot and must re-bootstrap.
func (s *Store) RollGeneration(name string, target uint64) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	c, err := s.Get(name)
	if err != nil {
		return err
	}
	if c.dir == "" {
		return ErrNoPersistence
	}
	c.commit.syncMu.Lock()
	defer c.commit.syncMu.Unlock()
	c.drainPending()
	defer c.ioMu.Unlock()
	c.mu.RLock()
	cur := c.gen
	c.mu.RUnlock()
	if cur+1 != target {
		return fmt.Errorf("%w: generation handoff to %d but replica is at %d", ErrReplDiverged, target, cur)
	}
	_, err = c.snapshot()
	return err
}

// ReplPosition reports the replica's resume point: its generation, the
// logical end of its journal (== its applied, durable stream offset — the
// apply path fsyncs before applying, so the three coincide between calls)
// and the applied entry count.
func (c *Collection) ReplPosition() (gen uint64, applied int64, entries int) {
	c.ioMu.Lock()
	defer c.ioMu.Unlock()
	if c.journal != nil {
		applied = c.journal.Offset()
	}
	c.mu.RLock()
	gen = c.gen
	entries = c.journaled
	c.mu.RUnlock()
	return gen, applied, entries
}

// ApplyReplicated ingests one stream chunk: raw journal frames of the
// given generation starting at byte offset from, which must equal the
// local journal's end (the stream has no gaps). The chunk's intact frames
// are appended verbatim, made durable, then applied in journal order; a
// trailing partial frame — a chunk cut by a dropped connection — is
// ignored, exactly like a torn tail at startup, and the follower resumes
// from the returned offset. Returns the new local journal offset and the
// number of entries applied.
func (c *Collection) ApplyReplicated(gen uint64, from int64, frames []byte) (off int64, applied int, err error) {
	c.commit.syncMu.Lock()
	defer c.commit.syncMu.Unlock()
	c.drainPending() // returns with ioMu held
	defer c.ioMu.Unlock()
	if c.closed || c.journal == nil {
		return 0, 0, fmt.Errorf("%w: collection %q is closed", ErrStorage, c.name)
	}
	c.mu.RLock()
	cur := c.gen
	c.mu.RUnlock()
	if gen != cur {
		return 0, 0, fmt.Errorf("%w: chunk of generation %d, replica at %d", ErrReplDiverged, gen, cur)
	}
	off = c.journal.Offset()
	if from != off {
		return 0, 0, fmt.Errorf("%w: chunk starts at %d, replica journal ends at %d", ErrReplDiverged, from, off)
	}
	// Decode before touching the journal: only frames that parse intact are
	// appended, so the local journal never needs the startup torn-tail
	// truncation for stream-delivered bytes. Interior corruption in a chunk
	// is a hard error — the leader only ships sealed frames, so it means the
	// transfer (or the leader's disk) is mangling data.
	sc := newFrameScanner(frames, off, c.name)
	entries, err := sc.scanAll()
	if err != nil {
		return 0, 0, fmt.Errorf("%w: replicated chunk: %v", ErrStorage, err)
	}
	validLen := sc.Offset() - off
	if validLen == 0 {
		return off, 0, nil
	}
	valid := frames[:validLen]
	// Durability strictly before apply, mirroring the leader's commit order:
	// append, flush, fsync, and only then mutate the engine. On failure the
	// journal rolls back to its durable mark (which also heals a poisoned
	// buffered writer); if even that fails the journal is closed and the
	// follower re-bootstraps the collection.
	err = c.journal.appendFrames(valid)
	if err == nil {
		err = c.journal.Flush()
	}
	if err == nil {
		err = c.journal.SyncFile()
	}
	if err != nil {
		c.metrics.incRollback()
		if rbErr := c.journal.Rollback(c.journal.SyncedOffset()); rbErr != nil {
			c.journal.Close()
			c.journal = nil
		}
		return off, 0, fmt.Errorf("%w: replica journal: %v", ErrStorage, err)
	}
	c.metrics.addWAL(len(valid), len(entries))
	// Apply in journal order through the leader's own batch path, one batch
	// per request-id run — the same partitioning startup replay rebuilds the
	// dedup window from, so ids, request spans and the query generation all
	// land exactly as they did on the leader.
	forEachRidRun(entries, func(i, j int, rid string) {
		batch := make([][]string, j-i)
		for k := i; k < j; k++ {
			batch[k-i] = entries[k].Tokens
		}
		c.applyBatch(&commitBatch{tokens: batch, rid: rid})
	})
	c.walChangedLocked() // this node may itself be streamed from (chained replicas)
	return c.journal.Offset(), len(entries), nil
}
