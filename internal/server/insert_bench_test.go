package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gbkmv"
	"gbkmv/internal/dataset"
)

// Server insert-throughput benchmarks: C concurrent clients inserting
// single-record batches into one journaled collection. ns/op is the
// sustained per-insert cost — with group commit, concurrent clients share
// fsyncs, so c8/c32 per-insert cost falls far below the c1 (one fsync per
// group of one) and Serial (the pre-group-commit per-insert-fsync baseline,
// forced via the commit.serial knob) numbers.

// benchInsertWorkload pregenerates per-client token batches with the
// streaming generator — the same Zipf/power-law shape datagen's
// -zipf-clients mode emits.
func benchInsertWorkload(b *testing.B, clients, perClient int) [][][]string {
	b.Helper()
	out := make([][][]string, clients)
	cfg := dataset.SyntheticConfig{
		NumRecords: 1, Universe: 20000,
		AlphaFreq: 1.1, AlphaSize: 2.5,
		MinSize: 10, MaxSize: 100,
	}
	err := dataset.StreamSynthetic(cfg, 42, clients*perClient, func(i int, r dataset.Record) error {
		tokens := make([]string, len(r))
		for j, e := range r {
			tokens[j] = fmt.Sprintf("e%d", e)
		}
		out[i%clients] = append(out[i%clients], tokens)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// newBenchCollection builds a journaled collection in a fresh temp dir,
// sharded across the given segment count. The main insert benchmarks run at
// one segment: routing through the segmentation layer with a single
// sub-index, which the CI gate holds to the pre-segmentation baselines.
func newBenchCollection(b *testing.B, serial bool, segments int) *Collection {
	b.Helper()
	store, err := NewStore(b.TempDir(), func(string, ...any) {})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	voc := gbkmv.NewVocabulary()
	recs := []gbkmv.Record{voc.Record([]string{"seed", "one"}), voc.Record([]string{"seed", "two"})}
	eng, err := gbkmv.NewSegmented("gbkmv", segments, recs, gbkmv.EngineOptions{BudgetUnits: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	c, err := store.Create("bench", voc, eng)
	if err != nil {
		b.Fatal(err)
	}
	c.commit.serial = serial
	return c
}

// runInsertBench drives b.N single-record inserts across the clients and
// reports per-insert wall time.
func runInsertBench(b *testing.B, clients int, serial bool, segments int) {
	workload := benchInsertWorkload(b, clients, 512)
	c := newBenchCollection(b, serial, segments)
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := workload[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				if _, err := c.Insert([][]string{mine[i%len(mine)]}, ""); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkServerInsert measures group-commit insert throughput at 1, 8 and
// 32 concurrent clients.
func BenchmarkServerInsert(b *testing.B) {
	for _, clients := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("c%d", clients), func(b *testing.B) {
			runInsertBench(b, clients, false, 1)
		})
	}
}

// BenchmarkServerInsertSegments is the segment-scaling matrix at 32
// concurrent clients: one segment (the serialized-apply baseline) against
// sharded counts, where per-segment locks let the engine applies of one
// journaled batch run in parallel. On a multicore runner seg8-c32 should
// beat seg1-c32; on one core they tie (the routing overhead is in the
// noise, which the seg1 CI gate pins).
func BenchmarkServerInsertSegments(b *testing.B) {
	for _, segs := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("seg%d-c32", segs), func(b *testing.B) {
			runInsertBench(b, 32, false, segs)
		})
	}
}

// BenchmarkServerInsertSerial is the per-insert-fsync baseline the group
// commit is judged against (ISSUE 4 acceptance: ≥5× at 32 clients): the
// same workload with the serial knob forcing one fsync per insert under the
// I/O lock, exactly the pre-group-commit write path.
func BenchmarkServerInsertSerial(b *testing.B) {
	for _, clients := range []int{1, 32} {
		b.Run(fmt.Sprintf("c%d", clients), func(b *testing.B) {
			runInsertBench(b, clients, true, 1)
		})
	}
}
