package asymminhash

import (
	"testing"

	"gbkmv/internal/dataset"
	"gbkmv/internal/hash"
	"gbkmv/internal/lshensemble"
)

func seqRecord(lo, hi int) dataset.Record {
	elems := make([]hash.Element, 0, hi-lo)
	for i := lo; i < hi; i++ {
		elems = append(elems, hash.Element(i))
	}
	return dataset.NewRecord(elems)
}

func testDataset(t *testing.T, alphaSize float64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.SyntheticConfig{
		NumRecords: 400, Universe: 5000,
		AlphaFreq: 1.1, AlphaSize: alphaSize,
		MinSize: 20, MaxSize: 400,
	}
	d, err := dataset.Synthetic(cfg, 66)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Build(&dataset.Dataset{}, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Build(testDataset(t, 2), Options{NumHashes: -4}); err == nil {
		t.Error("negative NumHashes accepted")
	}
}

func TestMaxSizeIsPaddingTarget(t *testing.T) {
	d := testDataset(t, 2)
	ix, err := Build(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range d.Records {
		if len(r) > want {
			want = len(r)
		}
	}
	if ix.MaxSize() != want {
		t.Errorf("MaxSize = %d, want %d", ix.MaxSize(), want)
	}
	if ix.SizeUnits() != 400*256 {
		t.Errorf("SizeUnits = %d", ix.SizeUnits())
	}
}

func TestPaddedSignatureConsistency(t *testing.T) {
	// Two records of equal size get the same pad contribution, so identical
	// records have identical padded signatures.
	d := testDataset(t, 2)
	ix, err := Build(d, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := ix.paddedSignature(d.Records[0])
	b := ix.paddedSignature(d.Records[0])
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("padded signature not deterministic")
		}
	}
}

func TestPadMinMonotone(t *testing.T) {
	d := testDataset(t, 2)
	ix, err := Build(d, Options{NumHashes: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range ix.padMin {
		for j := 1; j < len(row); j++ {
			if row[j] > row[j-1] {
				t.Fatalf("padMin[%d] not non-increasing at %d", i, j)
			}
		}
	}
}

func TestQuerySelfRetrieval(t *testing.T) {
	d := testDataset(t, 2)
	ix, err := Build(d, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The largest records suffer least padding; they must be retrievable by
	// their own query.
	bigID := 0
	for i, r := range d.Records {
		if len(r) > len(d.Records[bigID]) {
			bigID = i
		}
	}
	found := false
	for _, id := range ix.Query(d.Records[bigID], 0.5) {
		if id == bigID {
			found = true
		}
	}
	if !found {
		t.Error("largest record not retrieved by its own query")
	}
}

func TestQueryEmptyAndEdge(t *testing.T) {
	d := testDataset(t, 2)
	ix, err := Build(d, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Query(dataset.Record{}, 0.5); got != nil {
		t.Errorf("empty query returned %v", got)
	}
	// Foreign query: may return candidates (unverified) but must not panic.
	ix.Query(seqRecord(100000, 100050), 0.5)
}

func TestJaccardThreshold(t *testing.T) {
	d := testDataset(t, 2)
	ix, err := Build(d, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// s* = t*q / (M + q − t*q), monotone in t*.
	prev := -1.0
	for _, tstar := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		s := ix.jaccardThreshold(tstar, 100)
		if s <= prev {
			t.Fatalf("threshold not monotone at t*=%v", tstar)
		}
		if s < 0 || s > 1 {
			t.Fatalf("threshold out of range: %v", s)
		}
		prev = s
	}
}

func TestSkewedSizesHurtF1VsLSHE(t *testing.T) {
	// The motivation for LSH-E (and the reason the GB-KMV paper uses LSH-E
	// as the baseline): padding every record to the single global maximum
	// size inflates the effective upper bound far more than LSH-E's
	// per-partition bounds, so on skewed size distributions asymmetric
	// minwise hashing loses the precision/recall trade-off. Compare F1 at
	// t* = 0.5.
	d := testDataset(t, 2.5) // skewed sizes: most records much smaller than max
	am, err := Build(d, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	le, err := lshensemble.Build(d, lshensemble.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f1 := func(results func(dataset.Record, float64) []int) float64 {
		var tp, fp, fn int
		for _, q := range d.SampleQueries(25, 3) {
			got := map[int]bool{}
			for _, id := range results(q, 0.5) {
				got[id] = true
			}
			for i, x := range d.Records {
				truth := q.Containment(x) >= 0.5
				switch {
				case truth && got[i]:
					tp++
				case !truth && got[i]:
					fp++
				case truth && !got[i]:
					fn++
				}
			}
		}
		if tp == 0 {
			return 0
		}
		p := float64(tp) / float64(tp+fp)
		r := float64(tp) / float64(tp+fn)
		return 2 * p * r / (p + r)
	}
	fAM := f1(am.Query)
	fLE := f1(le.Query)
	if fAM > fLE+0.02 {
		t.Errorf("asym minwise F1 %.3f above LSH-E %.3f on skewed sizes (unexpected)", fAM, fLE)
	}
}

func BenchmarkQuery(b *testing.B) {
	cfg := dataset.SyntheticConfig{
		NumRecords: 500, Universe: 5000,
		AlphaFreq: 1.1, AlphaSize: 2,
		MinSize: 20, MaxSize: 300,
	}
	d, err := dataset.Synthetic(cfg, 2)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := Build(d, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := d.Records[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(q, 0.5)
	}
}
