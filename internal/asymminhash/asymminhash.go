// Package asymminhash implements asymmetric minwise hashing (Shrivastava &
// Li, WWW 2015), the containment-search baseline that preceded LSH Ensemble
// and that both the GB-KMV paper and Zhu et al. discuss (Section VI): since
// no LSH family exists for the asymmetric containment similarity, every
// *indexed* record is padded with shared dummy symbols z_1, z_2, ... up to
// the maximum record size M, while queries stay unpadded. The Jaccard
// similarity of the padded record with the query,
//
//	J(Q, P(X)) = |Q ∩ X| / (M + |Q| − |Q ∩ X|),
//
// is monotone in the overlap |Q ∩ X| for a fixed query, so standard MinHash
// LSH over the transformed sets retrieves high-containment records.
//
// Zhu et al. observed — and the GB-KMV paper repeats — that padding wrecks
// recall on skewed size distributions: a small record is mostly padding, so
// its signature is dominated by dummy symbols. The baselines experiment
// reproduces that effect against LSH-E and GB-KMV.
package asymminhash

import (
	"errors"
	"math"
	"sort"

	"gbkmv/internal/dataset"
	"gbkmv/internal/hash"
	"gbkmv/internal/lshforest"
	"gbkmv/internal/minhash"
)

// Options configures the index.
type Options struct {
	NumHashes int // MinHash signature length (default 256)
	MaxBands  int // LSH Forest trees (default 32)
	Seed      uint64
}

func (o Options) withDefaults() Options {
	if o.NumHashes == 0 {
		o.NumHashes = 256
	}
	if o.MaxBands == 0 {
		o.MaxBands = 32
	}
	return o
}

// Index is the asymmetric minwise hashing index.
type Index struct {
	opt      Options
	gen      *minhash.Generator
	forest   *lshforest.Forest
	maxSize  int // M, the padding target
	sizes    []int
	maxDepth int
	// padMin[i][j] is the minimum hash of functions i over the first j
	// padding symbols (padMin[i][0] = MaxUint64).
	padMin [][]uint64
	// optParams caches (b, r) per threshold grid point, as in lshensemble.
	optParams []bandParam
}

type bandParam struct{ b, r int }

const paramGrid = 50

// padBase offsets the dummy-symbol ids far beyond any real element id.
const padBase = uint64(1) << 62

// Build constructs the index over the dataset.
func Build(d *dataset.Dataset, opt Options) (*Index, error) {
	opt = opt.withDefaults()
	if opt.NumHashes <= 0 || opt.MaxBands <= 0 {
		return nil, errors.New("asymminhash: parameters must be positive")
	}
	if d == nil || len(d.Records) == 0 {
		return nil, errors.New("asymminhash: empty dataset")
	}
	l := opt.MaxBands
	for opt.NumHashes%l != 0 {
		l--
	}
	maxDepth := opt.NumHashes / l

	ix := &Index{
		opt:      opt,
		gen:      minhash.NewGenerator(opt.NumHashes, opt.Seed),
		maxDepth: maxDepth,
		sizes:    make([]int, len(d.Records)),
	}
	for i, r := range d.Records {
		ix.sizes[i] = len(r)
		if len(r) > ix.maxSize {
			ix.maxSize = len(r)
		}
	}
	// Prefix minima of the padding symbols' hashes, per hash function. The
	// pad symbols are hashed with their own seeded functions; because pads
	// never occur in queries and are identical across records, any uniform
	// assignment of hash values to them yields the same collision law as
	// extending each h_i over the pad symbols, so the padded signature is a
	// faithful minwise signature of P(X).
	ix.padMin = make([][]uint64, opt.NumHashes)
	for i := range ix.padMin {
		row := make([]uint64, ix.maxSize+1)
		row[0] = math.MaxUint64
		for j := 1; j <= ix.maxSize; j++ {
			h := hash.Hash64(hash.Element(padBase+uint64(j)), hash.Mix64(uint64(i)+opt.Seed))
			if h < row[j-1] {
				row[j] = h
			} else {
				row[j] = row[j-1]
			}
		}
		ix.padMin[i] = row
	}

	forest, err := lshforest.New(l, maxDepth, opt.Seed)
	if err != nil {
		return nil, err
	}
	for id, r := range d.Records {
		forest.Add(id, ix.paddedSignature(r))
	}
	forest.Index()
	ix.forest = forest
	ix.buildParamTable(l, maxDepth)
	return ix, nil
}

// paddedSignature signs P(X) = X ∪ {z_1..z_{M−|X|}} without materializing
// the padding: position i is min(minhash_i(X), padMin[i][M−|X|]).
func (ix *Index) paddedSignature(r dataset.Record) minhash.Signature {
	sig := ix.gen.Sign(r)
	pad := ix.maxSize - len(r)
	if pad < 0 {
		pad = 0
	}
	for i := range sig {
		if pm := ix.padMin[i][pad]; pm < sig[i] {
			sig[i] = pm
		}
	}
	return sig
}

// buildParamTable mirrors lshensemble's FP+FN-minimizing (b, r) selection.
func (ix *Index) buildParamTable(l, maxDepth int) {
	ix.optParams = make([]bandParam, paramGrid+1)
	for i := 0; i <= paramGrid; i++ {
		sStar := float64(i) / paramGrid
		best := bandParam{b: l, r: 1}
		bestCost := math.Inf(1)
		for r := 1; r <= maxDepth; r++ {
			for b := 1; b <= l; b++ {
				cost := integrate(0, sStar, func(s float64) float64 {
					return collisionProb(s, b, r)
				}) + integrate(sStar, 1, func(s float64) float64 {
					return 1 - collisionProb(s, b, r)
				})
				if cost < bestCost {
					bestCost = cost
					best = bandParam{b: b, r: r}
				}
			}
		}
		ix.optParams[i] = best
	}
}

func collisionProb(s float64, b, r int) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(r)), float64(b))
}

func integrate(a, b float64, f func(float64) float64) float64 {
	if b <= a {
		return 0
	}
	const n = 24
	h := (b - a) / n
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// jaccardThreshold converts the containment threshold into the padded-space
// Jaccard threshold: s* = t*·q / (M + q − t*·q).
func (ix *Index) jaccardThreshold(tstar float64, qSize int) float64 {
	num := tstar * float64(qSize)
	den := float64(ix.maxSize) + float64(qSize) - num
	if den <= 0 {
		return 1
	}
	s := num / den
	if s > 1 {
		s = 1
	}
	return s
}

// Query returns candidate record ids for containment threshold tstar,
// ascending. Like LSH-E, candidates are returned unverified.
func (ix *Index) Query(q dataset.Record, tstar float64) []int {
	if len(q) == 0 {
		return nil
	}
	sStar := ix.jaccardThreshold(tstar, len(q))
	idx := int(math.Round(sStar * paramGrid))
	if idx < 0 {
		idx = 0
	}
	if idx > paramGrid {
		idx = paramGrid
	}
	p := ix.optParams[idx]
	// The query is NOT padded: that is the asymmetry.
	sig := ix.gen.Sign(q)
	theta := tstar * float64(len(q))
	out := []int{}
	for _, id := range ix.forest.Query(sig, p.b, p.r) {
		// Size filter only; no verification (candidate semantics).
		if float64(ix.sizes[id]) >= theta {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// MaxSize returns the padding target M.
func (ix *Index) MaxSize() int { return ix.maxSize }

// SizeUnits returns the signature storage in hash-value units.
func (ix *Index) SizeUnits() int { return len(ix.sizes) * ix.opt.NumHashes }
