// Package freqset implements an exact containment similarity search in the
// style of the token-set inverted indexes of Agrawal, Arasu & Kaushik
// (SIGMOD 2010) — the paper's second exact baseline ("FrequentSet",
// Section V-A). It is the classic ScanCount algorithm: a full inverted index
// from token to record ids; a query merges the lists of all its tokens,
// counts occurrences per record, and keeps records whose count reaches the
// overlap threshold ⌈t*·|Q|⌉.
//
// ScanCount touches every posting of every query token, so its cost grows
// with record/query length — the behavior Fig. 19(b) of the paper contrasts
// with the sketch-based search.
package freqset

import (
	"errors"
	"math"
	"sort"

	"gbkmv/internal/dataset"
	"gbkmv/internal/hash"
)

// Index is the inverted-index exact search structure.
type Index struct {
	lists map[hash.Element][]int32
	sizes []int
}

// Build constructs the index.
func Build(d *dataset.Dataset) (*Index, error) {
	if d == nil || len(d.Records) == 0 {
		return nil, errors.New("freqset: empty dataset")
	}
	ix := &Index{
		lists: make(map[hash.Element][]int32),
		sizes: make([]int, len(d.Records)),
	}
	for i, r := range d.Records {
		ix.sizes[i] = len(r)
		for _, e := range r {
			ix.lists[e] = append(ix.lists[e], int32(i))
		}
	}
	return ix, nil
}

// NumRecords returns the number of indexed records.
func (ix *Index) NumRecords() int { return len(ix.sizes) }

// Search returns, exactly, every record id with C(Q, X) ≥ tstar, ascending.
func (ix *Index) Search(q dataset.Record, tstar float64) []int {
	if len(q) == 0 {
		return nil
	}
	if tstar <= 0 {
		out := make([]int, len(ix.sizes))
		for i := range out {
			out[i] = i
		}
		return out
	}
	c := int(math.Ceil(tstar*float64(len(q)) - 1e-9))
	if c < 1 {
		c = 1
	}
	if c > len(q) {
		return nil
	}
	counts := make(map[int32]int)
	for _, e := range q {
		for _, id := range ix.lists[e] {
			counts[id]++
		}
	}
	out := []int{}
	for id, n := range counts {
		if n >= c {
			out = append(out, int(id))
		}
	}
	sort.Ints(out)
	return out
}
