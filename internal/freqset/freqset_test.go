package freqset

import (
	"testing"

	"gbkmv/internal/dataset"
	"gbkmv/internal/hash"
)

func seqRecord(lo, hi int) dataset.Record {
	elems := make([]hash.Element, 0, hi-lo)
	for i := lo; i < hi; i++ {
		elems = append(elems, hash.Element(i))
	}
	return dataset.NewRecord(elems)
}

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := dataset.SyntheticConfig{
		NumRecords: 250, Universe: 2500,
		AlphaFreq: 1.1, AlphaSize: 2.0,
		MinSize: 10, MaxSize: 120,
	}
	d, err := dataset.Synthetic(cfg, 44)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func bruteForce(d *dataset.Dataset, q dataset.Record, tstar float64) []int {
	out := []int{}
	for i, x := range d.Records {
		if q.Containment(x) >= tstar {
			out = append(out, i)
		}
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Build(&dataset.Dataset{}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	d := testDataset(t)
	ix, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, tstar := range []float64{0.1, 0.33, 0.5, 0.8, 1.0} {
		for _, q := range d.SampleQueries(20, 6) {
			got := ix.Search(q, tstar)
			want := bruteForce(d, q, tstar)
			if !sameInts(got, want) {
				t.Fatalf("t*=%v: got %v, want %v", tstar, got, want)
			}
		}
	}
}

func TestSearchCeilBoundary(t *testing.T) {
	// q = 4, t* = 0.5 → c = 2 exactly; records with overlap 1 are out, 2 in.
	d := &dataset.Dataset{
		Records: []dataset.Record{
			seqRecord(0, 1),   // overlap 1 → C = 0.25
			seqRecord(0, 2),   // overlap 2 → C = 0.5
			seqRecord(10, 20), // overlap 0
		},
		Universe: 20,
	}
	ix, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	q := seqRecord(0, 4)
	got := ix.Search(q, 0.5)
	if !sameInts(got, []int{1}) {
		t.Errorf("got %v, want [1]", got)
	}
}

func TestSearchEdgeCases(t *testing.T) {
	d := testDataset(t)
	ix, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Search(dataset.Record{}, 0.5); got != nil {
		t.Errorf("empty query returned %v", got)
	}
	if got := ix.Search(d.Records[0], 0); len(got) != d.NumRecords() {
		t.Errorf("t*=0 returned %d", len(got))
	}
	if got := ix.Search(seqRecord(900000, 900005), 0.2); len(got) != 0 {
		t.Errorf("foreign query matched %v", got)
	}
}

func TestNumRecords(t *testing.T) {
	d := testDataset(t)
	ix, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumRecords() != d.NumRecords() {
		t.Errorf("NumRecords = %d", ix.NumRecords())
	}
}

func BenchmarkSearch(b *testing.B) {
	cfg := dataset.SyntheticConfig{
		NumRecords: 1000, Universe: 10000,
		AlphaFreq: 1.1, AlphaSize: 2.0,
		MinSize: 20, MaxSize: 300,
	}
	d, err := dataset.Synthetic(cfg, 5)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := Build(d)
	if err != nil {
		b.Fatal(err)
	}
	q := d.Records[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 0.5)
	}
}
