// Package eval provides the evaluation harness of Section V: parallel
// brute-force ground truth for containment similarity search, precision /
// recall / Fα scoring (Equation 35), per-query accuracy distributions
// (Fig. 14) and simple query timing.
package eval

import (
	"math"
	"runtime"
	"sync"
	"time"

	"gbkmv/internal/dataset"
	"gbkmv/internal/stats"
)

// GroundTruth computes T = {X : C(Q, X) ≥ t*} exactly for one query.
func GroundTruth(d *dataset.Dataset, q dataset.Record, tstar float64) []int {
	out := []int{}
	for i, x := range d.Records {
		if q.Containment(x) >= tstar {
			out = append(out, i)
		}
	}
	return out
}

// GroundTruthAll computes the ground truth of every query in parallel.
func GroundTruthAll(d *dataset.Dataset, queries []dataset.Record, tstar float64) [][]int {
	out := make([][]int, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, q := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q dataset.Record) {
			defer wg.Done()
			out[i] = GroundTruth(d, q, tstar)
			<-sem
		}(i, q)
	}
	wg.Wait()
	return out
}

// Confusion holds the per-query retrieval counts.
type Confusion struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Compare computes the confusion counts of a returned id set against the
// ground truth set. Both slices must be duplicate-free; order is irrelevant.
func Compare(truth, returned []int) Confusion {
	inTruth := make(map[int]struct{}, len(truth))
	for _, id := range truth {
		inTruth[id] = struct{}{}
	}
	var c Confusion
	for _, id := range returned {
		if _, ok := inTruth[id]; ok {
			c.TruePositives++
		} else {
			c.FalsePositives++
		}
	}
	c.FalseNegatives = len(truth) - c.TruePositives
	return c
}

// Add accumulates another confusion.
func (c *Confusion) Add(o Confusion) {
	c.TruePositives += o.TruePositives
	c.FalsePositives += o.FalsePositives
	c.FalseNegatives += o.FalseNegatives
}

// Precision returns |T∩A| / |A|; by convention 1 when nothing was returned
// and nothing should have been, else 0 for an empty answer with a non-empty
// truth... precision of an empty answer is defined as 1 if truth is empty,
// 0 otherwise would divide by zero — we return 1 when A is empty and T is
// empty, and 0 when A is empty but T is not (the query retrieved nothing
// useful).
func (c Confusion) Precision() float64 {
	den := c.TruePositives + c.FalsePositives
	if den == 0 {
		if c.FalseNegatives == 0 {
			return 1
		}
		return 0
	}
	return float64(c.TruePositives) / float64(den)
}

// Recall returns |T∩A| / |T|, and 1 when the truth set is empty.
func (c Confusion) Recall() float64 {
	den := c.TruePositives + c.FalseNegatives
	if den == 0 {
		return 1
	}
	return float64(c.TruePositives) / float64(den)
}

// F computes the Fα score (Equation 35). α = 1 weights precision and recall
// equally; α = 0.5 weights precision more (used because LSH-E favours
// recall).
func (c Confusion) F(alpha float64) float64 {
	p, r := c.Precision(), c.Recall()
	den := alpha*alpha*p + r
	if den == 0 {
		return 0
	}
	return (1 + alpha*alpha) * p * r / den
}

// F1 is F(1).
func (c Confusion) F1() float64 { return c.F(1) }

// F05 is F(0.5).
func (c Confusion) F05() float64 { return c.F(0.5) }

// Searcher abstracts the systems under evaluation.
type Searcher interface {
	Search(q dataset.Record, tstar float64) []int
}

// SearcherFunc adapts a function to the Searcher interface.
type SearcherFunc func(q dataset.Record, tstar float64) []int

// Search implements Searcher.
func (f SearcherFunc) Search(q dataset.Record, tstar float64) []int { return f(q, tstar) }

// Result aggregates an evaluation run over a query workload.
type Result struct {
	Macro        Confusion // summed confusion over all queries
	F1           float64   // macro F1 (from summed counts)
	F05          float64   // macro F0.5
	Precision    float64
	Recall       float64
	PerQueryF1   stats.Summary // distribution of per-query F1 (Fig. 14)
	AvgQueryTime time.Duration
	TotalTime    time.Duration
}

// Run evaluates a searcher on a query workload at threshold tstar against
// precomputed ground truth (use GroundTruthAll). len(truth) must equal
// len(queries).
func Run(s Searcher, queries []dataset.Record, truth [][]int, tstar float64) Result {
	var res Result
	perF1 := make([]float64, 0, len(queries))
	start := time.Now()
	for i, q := range queries {
		qStart := time.Now()
		returned := s.Search(q, tstar)
		res.TotalTime += time.Since(qStart)
		c := Compare(truth[i], returned)
		res.Macro.Add(c)
		perF1 = append(perF1, c.F1())
		_ = start
	}
	if len(queries) > 0 {
		res.AvgQueryTime = res.TotalTime / time.Duration(len(queries))
	}
	res.F1 = res.Macro.F1()
	res.F05 = res.Macro.F05()
	res.Precision = res.Macro.Precision()
	res.Recall = res.Macro.Recall()
	res.PerQueryF1 = stats.Summarize(perF1)
	return res
}

// MeanAbsError measures the mean absolute containment-estimation error of an
// estimator over all (query, record) pairs — the raw estimator quality
// behind the retrieval metrics.
func MeanAbsError(d *dataset.Dataset, queries []dataset.Record,
	estimate func(q dataset.Record, i int) float64) float64 {
	var sum float64
	var n int
	for _, q := range queries {
		for i, x := range d.Records {
			sum += math.Abs(estimate(q, i) - q.Containment(x))
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
