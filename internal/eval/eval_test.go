package eval

import (
	"math"
	"testing"

	"gbkmv/internal/dataset"
	"gbkmv/internal/hash"
)

func seqRecord(lo, hi int) dataset.Record {
	elems := make([]hash.Element, 0, hi-lo)
	for i := lo; i < hi; i++ {
		elems = append(elems, hash.Element(i))
	}
	return dataset.NewRecord(elems)
}

func TestGroundTruthSmall(t *testing.T) {
	d := &dataset.Dataset{
		Records: []dataset.Record{
			seqRecord(0, 4),   // C(Q, X0) = 4/6
			seqRecord(0, 3),   // C = 3/6
			seqRecord(10, 20), // C = 0
		},
		Universe: 20,
	}
	q := seqRecord(0, 6)
	got := GroundTruth(d, q, 0.5)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("GroundTruth = %v, want [0 1]", got)
	}
	got = GroundTruth(d, q, 0.6)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("GroundTruth at 0.6 = %v, want [0]", got)
	}
}

func TestGroundTruthAllMatchesSequential(t *testing.T) {
	cfg := dataset.SyntheticConfig{
		NumRecords: 150, Universe: 2000,
		AlphaFreq: 1.1, AlphaSize: 2,
		MinSize: 10, MaxSize: 100,
	}
	d, err := dataset.Synthetic(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	queries := d.SampleQueries(10, 2)
	all := GroundTruthAll(d, queries, 0.4)
	for i, q := range queries {
		want := GroundTruth(d, q, 0.4)
		if len(all[i]) != len(want) {
			t.Fatalf("query %d: parallel %v != sequential %v", i, all[i], want)
		}
		for j := range want {
			if all[i][j] != want[j] {
				t.Fatalf("query %d mismatch", i)
			}
		}
	}
}

func TestCompare(t *testing.T) {
	c := Compare([]int{1, 2, 3}, []int{2, 3, 4, 5})
	if c.TruePositives != 2 || c.FalsePositives != 2 || c.FalseNegatives != 1 {
		t.Errorf("Compare = %+v", c)
	}
}

func TestCompareEmpty(t *testing.T) {
	c := Compare(nil, nil)
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Errorf("empty/empty: precision %v recall %v, want 1/1", c.Precision(), c.Recall())
	}
	c = Compare([]int{1}, nil)
	if c.Precision() != 0 || c.Recall() != 0 {
		t.Errorf("missed-everything: precision %v recall %v, want 0/0", c.Precision(), c.Recall())
	}
	c = Compare(nil, []int{1})
	if c.Precision() != 0 || c.Recall() != 1 {
		t.Errorf("all-false-positives: precision %v recall %v, want 0/1", c.Precision(), c.Recall())
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := Confusion{TruePositives: 6, FalsePositives: 2, FalseNegatives: 4}
	if got := c.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Recall = %v", got)
	}
	wantF1 := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
}

func TestFAlphaFormula(t *testing.T) {
	// Equation 35 with α = 0.5: (1.25·P·R)/(0.25·P + R).
	c := Confusion{TruePositives: 8, FalsePositives: 2, FalseNegatives: 8}
	p, r := 0.8, 0.5
	want := 1.25 * p * r / (0.25*p + r)
	if got := c.F05(); math.Abs(got-want) > 1e-12 {
		t.Errorf("F0.5 = %v, want %v", got, want)
	}
}

func TestF05WeighsPrecision(t *testing.T) {
	// Two systems with mirrored (P, R): F0.5 must favor the high-precision
	// one while F1 treats them identically.
	highP := Confusion{TruePositives: 9, FalsePositives: 1, FalseNegatives: 9} // P=0.9 R=0.5
	highR := Confusion{TruePositives: 9, FalsePositives: 9, FalseNegatives: 1} // P=0.5 R=0.9
	if math.Abs(highP.F1()-highR.F1()) > 1e-12 {
		t.Errorf("F1 should be symmetric: %v vs %v", highP.F1(), highR.F1())
	}
	if highP.F05() <= highR.F05() {
		t.Errorf("F0.5 should favor precision: %v vs %v", highP.F05(), highR.F05())
	}
}

func TestFZeroDenominator(t *testing.T) {
	c := Confusion{FalseNegatives: 3}
	if got := c.F1(); got != 0 {
		t.Errorf("F1 with zero P and R = %v", got)
	}
}

func TestRunAgainstPerfectSearcher(t *testing.T) {
	cfg := dataset.SyntheticConfig{
		NumRecords: 100, Universe: 1500,
		AlphaFreq: 1.1, AlphaSize: 2,
		MinSize: 10, MaxSize: 80,
	}
	d, err := dataset.Synthetic(cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	queries := d.SampleQueries(8, 3)
	truth := GroundTruthAll(d, queries, 0.5)
	perfect := SearcherFunc(func(q dataset.Record, tstar float64) []int {
		return GroundTruth(d, q, tstar)
	})
	res := Run(perfect, queries, truth, 0.5)
	if res.F1 != 1 || res.Precision != 1 || res.Recall != 1 {
		t.Errorf("perfect searcher scored F1=%v P=%v R=%v", res.F1, res.Precision, res.Recall)
	}
	if res.PerQueryF1.Min != 1 {
		t.Errorf("per-query F1 min = %v", res.PerQueryF1.Min)
	}
	if res.AvgQueryTime < 0 {
		t.Error("negative timing")
	}
}

func TestRunAgainstEmptySearcher(t *testing.T) {
	d := &dataset.Dataset{
		Records:  []dataset.Record{seqRecord(0, 20), seqRecord(0, 25)},
		Universe: 25,
	}
	queries := []dataset.Record{d.Records[0]}
	truth := GroundTruthAll(d, queries, 0.5)
	empty := SearcherFunc(func(dataset.Record, float64) []int { return nil })
	res := Run(empty, queries, truth, 0.5)
	if res.Recall != 0 {
		t.Errorf("empty searcher recall = %v", res.Recall)
	}
}

func TestMeanAbsError(t *testing.T) {
	d := &dataset.Dataset{
		Records:  []dataset.Record{seqRecord(0, 10), seqRecord(5, 15)},
		Universe: 15,
	}
	queries := []dataset.Record{seqRecord(0, 10)}
	// Perfect estimator → error 0.
	got := MeanAbsError(d, queries, func(q dataset.Record, i int) float64 {
		return q.Containment(d.Records[i])
	})
	if got != 0 {
		t.Errorf("perfect estimator MAE = %v", got)
	}
	// Constant-zero estimator → mean of true containments (1 and 0.5)/2.
	got = MeanAbsError(d, queries, func(dataset.Record, int) float64 { return 0 })
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("zero estimator MAE = %v, want 0.75", got)
	}
	if !math.IsNaN(MeanAbsError(d, nil, nil)) {
		t.Error("MAE with no queries should be NaN")
	}
}
