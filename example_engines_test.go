package gbkmv_test

import (
	"bytes"
	"fmt"

	"gbkmv"
)

// engineExampleCorpus is the tiny corpus every per-engine example indexes:
// at a 100% budget all sketch engines are lossless on it, so the examples
// print exact, deterministic results.
func engineExampleCorpus() (*gbkmv.Vocabulary, []gbkmv.Record, []string) {
	voc := gbkmv.NewVocabulary()
	records := []gbkmv.Record{
		voc.Record([]string{"five", "guys", "burgers", "and", "fries"}),
		voc.Record([]string{"five", "kitchen", "berkeley"}),
		voc.Record([]string{"in", "n", "out", "burgers"}),
	}
	return voc, records, []string{"five", "guys"}
}

// searchWith builds the named engine over the example corpus and asks for
// the best record for the query through the engine-generic prepared query.
// Record 0 contains the whole query, so every backend — sketched or exact —
// ranks it first.
func searchWith(name string) {
	voc, records, query := engineExampleCorpus()
	// BudgetFraction 1 makes the KMV-family sketches lossless on this tiny
	// corpus; NumHashes 8 covers the largest record for the same effect on
	// the per-record "kmv" allocation.
	e, err := gbkmv.NewEngine(name, records, gbkmv.EngineOptions{BudgetFraction: 1, NumHashes: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	pq, err := gbkmv.PrepareTokens(e, voc, query)
	if err != nil {
		panic(err)
	}
	fmt.Println(e.EngineName(), "best:", pq.TopK(1)[0].ID)
}

// ExampleNewEngine demonstrates swapping the sketch backend under the same
// search: every registered engine indexes the same records and answers the
// same query.
func ExampleNewEngine() {
	for _, name := range []string{"gbkmv", "exact"} {
		searchWith(name)
	}
	// Output:
	// gbkmv best: 0
	// exact best: 0
}

// ExampleNewEngine_gbkmv runs the flagship GB-KMV engine: buffer + G-KMV
// sketch, the paper's own method.
func ExampleNewEngine_gbkmv() {
	searchWith("gbkmv")
	// Output: gbkmv best: 0
}

// ExampleNewEngine_gkmv runs the buffer-less G-KMV variant (Section
// IV-A(2)).
func ExampleNewEngine_gkmv() {
	searchWith("gkmv")
	// Output: gkmv best: 0
}

// ExampleNewEngine_kmv runs the classic KMV baseline (Beyer et al. 2007)
// with the equal-allocation budget of Theorem 1.
func ExampleNewEngine_kmv() {
	searchWith("kmv")
	// Output: kmv best: 0
}

// ExampleNewEngine_minhash runs the per-record MinHash-LSH estimator
// (Equation 14).
func ExampleNewEngine_minhash() {
	searchWith("minhash")
	// Output: minhash best: 0
}

// ExampleNewEngine_lshforest runs the LSH Forest baseline (Bawa et al.
// 2005): candidate retrieval from banded MinHash prefix trees.
func ExampleNewEngine_lshforest() {
	searchWith("lshforest")
	// Output: lshforest best: 0
}

// ExampleNewEngine_lshensemble runs LSH Ensemble (Zhu et al., VLDB 2016),
// the recall-leaning state-of-the-art baseline the paper compares against.
func ExampleNewEngine_lshensemble() {
	searchWith("lshensemble")
	// Output: lshensemble best: 0
}

// ExampleNewEngine_exact runs the PPjoin-style exact backend — ground truth
// at index-scan cost.
func ExampleNewEngine_exact() {
	searchWith("exact")
	// Output: exact best: 0
}

// ExampleSaveEngine round-trips an engine through the header-tagged snapshot
// format: LoadEngine reads the header and dispatches to the engine that
// wrote the stream.
func ExampleSaveEngine() {
	_, records, _ := engineExampleCorpus()
	e, err := gbkmv.NewEngine("kmv", records, gbkmv.EngineOptions{BudgetFraction: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := gbkmv.SaveEngine(&buf, e); err != nil {
		panic(err)
	}
	loaded, err := gbkmv.LoadEngine(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(loaded.EngineName(), loaded.Len())
	// Output: kmv 3
}
