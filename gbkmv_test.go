package gbkmv_test

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"gbkmv"
)

func numericRecords(m, span, stride int) []gbkmv.Record {
	out := make([]gbkmv.Record, m)
	for i := range out {
		elems := make([]gbkmv.Element, 0, span)
		for j := 0; j < span; j++ {
			elems = append(elems, gbkmv.Element(i*stride+j))
		}
		out[i] = gbkmv.NewRecord(elems)
	}
	return out
}

func TestBuildErrors(t *testing.T) {
	if _, err := gbkmv.Build(nil, gbkmv.Options{}); err == nil {
		t.Error("empty build accepted")
	}
	if _, err := gbkmv.Build(numericRecords(3, 10, 5), gbkmv.Options{BufferBits: -7}); err == nil {
		t.Error("invalid BufferBits accepted")
	}
	if _, err := gbkmv.Build(numericRecords(3, 10, 5), gbkmv.Options{BudgetFraction: 2}); err == nil {
		t.Error("invalid BudgetFraction accepted")
	}
}

func TestBuildAndSearch(t *testing.T) {
	records := numericRecords(100, 200, 20) // heavy overlap between neighbors
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 {
		t.Fatalf("Len = %d", ix.Len())
	}
	// Query = record 50; its neighbors overlap by 90%, 80%, ...
	hits := ix.Search(records[50], 0.5)
	found := false
	for _, id := range hits {
		if id == 50 {
			found = true
		}
	}
	if !found {
		t.Error("self not found at t*=0.5")
	}
	// Far-away records (no overlap) must not be returned.
	for _, id := range hits {
		if id < 35 || id > 65 {
			t.Errorf("implausible hit %d for query 50", id)
		}
	}
}

func TestEstimateAgainstTruth(t *testing.T) {
	records := numericRecords(50, 300, 30)
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := records[10]
	// Truth: C(q, records[11]) = 270/300 = 0.9.
	got := ix.Estimate(q, 11)
	if math.Abs(got-0.9) > 0.15 {
		t.Errorf("Estimate = %v, want ~0.9", got)
	}
	if got := ix.Estimate(q, 40); got > 0.1 {
		t.Errorf("disjoint estimate = %v, want ~0", got)
	}
}

func TestEstimateAllLength(t *testing.T) {
	records := numericRecords(30, 50, 10)
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ests := ix.EstimateAll(records[0])
	if len(ests) != 30 {
		t.Fatalf("EstimateAll length = %d", len(ests))
	}
	if ests[0] < 0.5 {
		t.Errorf("self estimate = %v, want high", ests[0])
	}
}

func TestAddThenSearch(t *testing.T) {
	records := numericRecords(40, 100, 15)
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 0.3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	novel := gbkmv.NewRecord([]gbkmv.Element{9000, 9001, 9002, 9003, 9004, 9005, 9006, 9007, 9008, 9009})
	id := ix.Add(novel)
	if id != 40 {
		t.Fatalf("Add returned id %d, want 40", id)
	}
	hits := ix.Search(novel, 0.5)
	found := false
	for _, h := range hits {
		if h == id {
			found = true
		}
	}
	if !found {
		t.Error("added record not retrievable")
	}
}

func TestStats(t *testing.T) {
	records := numericRecords(60, 120, 20)
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Stats()
	if s.NumRecords != 60 {
		t.Errorf("NumRecords = %d", s.NumRecords)
	}
	if s.Tau <= 0 || s.Tau > 1 {
		t.Errorf("Tau = %v", s.Tau)
	}
	if s.UsedUnits <= 0 || s.SizeBytes <= 0 {
		t.Errorf("UsedUnits=%d SizeBytes=%d", s.UsedUnits, s.SizeBytes)
	}
	if s.BufferBits < 0 {
		t.Errorf("BufferBits = %d", s.BufferBits)
	}
}

func TestNoBufferOption(t *testing.T) {
	records := numericRecords(60, 120, 20)
	ix, err := gbkmv.Build(records, gbkmv.Options{BufferBits: gbkmv.NoBuffer, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().BufferBits; got != 0 {
		t.Errorf("NoBuffer index has r=%d", got)
	}
}

func TestManualBufferOption(t *testing.T) {
	records := numericRecords(60, 120, 20)
	ix, err := gbkmv.Build(records, gbkmv.Options{BufferBits: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().BufferBits; got != 24 {
		t.Errorf("manual buffer r=%d, want 24", got)
	}
}

func TestVocabularyBasics(t *testing.T) {
	v := gbkmv.NewVocabulary()
	a := v.ID("hello")
	b := v.ID("world")
	if a == b {
		t.Fatal("distinct tokens share an id")
	}
	if got := v.ID("hello"); got != a {
		t.Error("repeated token got a new id")
	}
	if got, ok := v.Lookup("world"); !ok || got != b {
		t.Error("Lookup failed")
	}
	if _, ok := v.Lookup("nope"); ok {
		t.Error("Lookup invented a token")
	}
	if v.Token(a) != "hello" || v.Token(Element999()) != "" {
		t.Error("Token mapping wrong")
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d", v.Len())
	}
}

// Element999 returns an id that no test vocabulary allocates.
func Element999() gbkmv.Element { return gbkmv.Element(999) }

func TestVocabularyRecordRoundTrip(t *testing.T) {
	v := gbkmv.NewVocabulary()
	r := v.Record([]string{"b", "a", "b", "c"})
	if len(r) != 3 {
		t.Fatalf("record = %v", r)
	}
	toks := v.Tokens(r)
	seen := map[string]bool{}
	for _, tok := range toks {
		seen[tok] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !seen[want] {
			t.Errorf("token %q lost in round trip", want)
		}
	}
}

func TestVocabularyConcurrent(t *testing.T) {
	v := gbkmv.NewVocabulary()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v.ID("tok" + strconv.Itoa(i%100))
			}
		}(g)
	}
	wg.Wait()
	if v.Len() != 100 {
		t.Errorf("Len = %d, want 100", v.Len())
	}
}

func TestPaperIntroScenario(t *testing.T) {
	// The running record-matching example from the paper's introduction.
	voc := gbkmv.NewVocabulary()
	x := voc.Record([]string{"five", "guys", "burgers", "and", "fries", "downtown", "brooklyn", "new", "york"})
	y := voc.Record([]string{"five", "kitchen", "berkeley"})
	ix, err := gbkmv.Build([]gbkmv.Record{x, y}, gbkmv.Options{BudgetFraction: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := voc.Record([]string{"five", "guys"})
	// At full budget the sketch is exact: C(q, x) = 1, C(q, y) = 0.5.
	if got := ix.Estimate(q, 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("C(Q, X) = %v, want 1", got)
	}
	if got := ix.Estimate(q, 1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("C(Q, Y) = %v, want 0.5", got)
	}
	hits := ix.Search(q, 0.75)
	if len(hits) != 1 || hits[0] != 0 {
		t.Errorf("Search = %v, want [0]", hits)
	}
}

func TestSaveLoadPublicAPI(t *testing.T) {
	records := numericRecords(50, 100, 20)
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 0.3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := gbkmv.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ix.Len() {
		t.Fatalf("Len after load = %d", got.Len())
	}
	q := records[3]
	a := ix.Search(q, 0.5)
	b := got.Search(q, 0.5)
	if len(a) != len(b) {
		t.Fatalf("search differs after load: %d vs %d", len(a), len(b))
	}
	if _, err := gbkmv.Load(bytes.NewReader([]byte("bad"))); err == nil {
		t.Error("garbage load accepted")
	}
}

func TestSearchTopKPublicAPI(t *testing.T) {
	records := numericRecords(60, 150, 25)
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 0.3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	top := ix.SearchTopK(records[10], 5)
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("top-k = %v", top)
	}
	if top[0].ID != 10 {
		t.Errorf("best match = %d, want 10 (self)", top[0].ID)
	}
}

func TestJoinPublicAPI(t *testing.T) {
	records := numericRecords(30, 200, 20) // 90% overlap between neighbors
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 0.4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	pairs := ix.Join(0.8)
	if len(pairs) == 0 {
		t.Fatal("join found nothing despite heavy overlap")
	}
	for _, p := range pairs {
		if p.Q == p.X {
			t.Fatalf("self pair %v", p)
		}
		// Neighbors overlap by 180/200 = 0.9; pairs further than 2 apart
		// overlap ≤ 0.8 exactly at distance 2 (160/200), so ids must be
		// within 2 of each other (plus estimator slack of 1).
		if d := p.Q - p.X; d > 3 || d < -3 {
			t.Errorf("implausible join pair %v", p)
		}
	}
}

func TestEstimateWithErrorPublicAPI(t *testing.T) {
	records := numericRecords(40, 300, 30)
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 0.2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	est, se := ix.EstimateWithError(records[5], 6)
	if est < 0 || est > 1 {
		t.Errorf("estimate = %v", est)
	}
	if se < 0 {
		t.Errorf("stderr = %v", se)
	}
	// Full-budget index: exact estimates, zero error.
	full, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 1, BufferBits: gbkmv.NoBuffer, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	est, se = full.EstimateWithError(records[5], 6)
	if se != 0 {
		t.Errorf("exact sketch stderr = %v, want 0", se)
	}
	if est != records[5].Containment(records[6]) {
		t.Errorf("exact estimate = %v, want truth", est)
	}
}

func TestShingles(t *testing.T) {
	cases := []struct {
		s    string
		q    int
		want []string
	}{
		{"abcd", 2, []string{"ab", "bc", "cd"}},
		{"ab", 2, []string{"ab"}},
		{"a", 3, []string{"a"}},
		{"", 2, nil},
	}
	for _, c := range cases {
		got := gbkmv.Shingles(c.s, c.q)
		if len(got) != len(c.want) {
			t.Fatalf("Shingles(%q, %d) = %v, want %v", c.s, c.q, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("Shingles(%q, %d) = %v, want %v", c.s, c.q, got, c.want)
			}
		}
	}
}

func TestShinglesPanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Shingles with q=0 did not panic")
		}
	}()
	gbkmv.Shingles("abc", 0)
}

func TestShingleRecordErrorTolerantMatch(t *testing.T) {
	// The error-tolerant-search motivation: a one-typo query still has high
	// q-gram containment in the correct record.
	voc := gbkmv.NewVocabulary()
	records := []gbkmv.Record{
		voc.ShingleRecord("mississippi", 3),
		voc.ShingleRecord("minneapolis", 3),
	}
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := voc.ShingleRecord("missisippi", 3) // missing an 's'
	hits := ix.Search(q, 0.6)
	if len(hits) != 1 || hits[0] != 0 {
		t.Errorf("typo query matched %v, want [0]", hits)
	}
}

func TestConcurrentSearch(t *testing.T) {
	records := numericRecords(200, 150, 20)
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Search is read-only after Build; hammer it from many goroutines and
	// check determinism.
	want := ix.Search(records[10], 0.5)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got := ix.Search(records[10], 0.5)
				if len(got) != len(want) {
					errs <- "result length changed under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestReadRecords(t *testing.T) {
	input := "five guys burgers\n\n  five kitchen  \n"
	voc := gbkmv.NewVocabulary()
	records, lines, err := gbkmv.ReadRecords(strings.NewReader(input), voc)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || len(lines) != 2 {
		t.Fatalf("got %d records, %d lines", len(records), len(lines))
	}
	if len(records[0]) != 3 || len(records[1]) != 2 {
		t.Errorf("record sizes = %d, %d", len(records[0]), len(records[1]))
	}
	if lines[1] != "five kitchen" {
		t.Errorf("line[1] = %q", lines[1])
	}
	// Shared token "five" must intern to the same element.
	if records[0].IntersectSize(records[1]) != 1 {
		t.Error("shared token not interned consistently")
	}
	// Nil vocabulary is allocated internally.
	if _, _, err := gbkmv.ReadRecords(strings.NewReader("a b"), nil); err != nil {
		t.Errorf("nil vocabulary: %v", err)
	}
}
