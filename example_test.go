package gbkmv_test

import (
	"fmt"

	"gbkmv"
)

// ExampleBuild indexes a tiny corpus and runs a containment search — the
// record-matching scenario from the paper's introduction.
func ExampleBuild() {
	voc := gbkmv.NewVocabulary()
	records := []gbkmv.Record{
		voc.Record([]string{"five", "guys", "burgers", "and", "fries"}),
		voc.Record([]string{"five", "kitchen", "berkeley"}),
	}
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	q := voc.Record([]string{"five", "guys"})
	fmt.Println(ix.Search(q, 0.75))
	// Output: [0]
}

// ExampleIndex_Estimate shows per-record containment estimates. At a 100%
// budget the sketch is lossless, so the estimates are exact.
func ExampleIndex_Estimate() {
	voc := gbkmv.NewVocabulary()
	records := []gbkmv.Record{
		voc.Record([]string{"a", "b", "c", "d"}),
		voc.Record([]string{"a", "b"}),
	}
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	q := voc.Record([]string{"a", "b"})
	fmt.Printf("%.2f %.2f\n", ix.Estimate(q, 0), ix.Estimate(q, 1))
	// Output: 1.00 1.00
}

// ExampleIndex_SearchTopK ranks records by estimated containment.
func ExampleIndex_SearchTopK() {
	voc := gbkmv.NewVocabulary()
	records := []gbkmv.Record{
		voc.Record([]string{"w", "x", "y", "z"}),
		voc.Record([]string{"w", "x"}),
		voc.Record([]string{"p", "q"}),
	}
	ix, err := gbkmv.Build(records, gbkmv.Options{BudgetFraction: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	for _, hit := range ix.SearchTopK(voc.Record([]string{"w", "x", "y"}), 2) {
		fmt.Printf("%d %.2f\n", hit.ID, hit.Score)
	}
	// Output:
	// 0 1.00
	// 1 0.67
}

// ExampleShingles tokenizes a string into overlapping q-grams, the
// representation the paper uses for error-tolerant text matching.
func ExampleShingles() {
	fmt.Println(gbkmv.Shingles("berkeley", 3))
	// Output: [ber erk rke kel ele ley]
}
